"""Virtual-to-physical translation with random frame allocation.

The paper (Section 7) translates trace virtual addresses by randomly
allocating a 4 KiB physical frame on first touch of each virtual page,
emulating the fragmented allocation of a steady-state system [85]. Random
placement matters: it spreads each application's pages over banks and
subarrays, which determines how many CROW copy rows are contended.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CapacityError, ConfigError

__all__ = ["VirtualMemory"]

PAGE_BYTES = 4096


class VirtualMemory:
    """Per-system page table with random first-touch frame allocation."""

    def __init__(self, capacity_bytes: int, seed: int = 1) -> None:
        if capacity_bytes < PAGE_BYTES:
            raise ConfigError("capacity must hold at least one page")
        self.total_frames = capacity_bytes // PAGE_BYTES
        self._page_table: dict[tuple[int, int], int] = {}
        self._used_frames: set[int] = set()
        self._rng = np.random.default_rng(seed)

    def translate(self, asid: int, vaddr: int) -> int:
        """Translate a virtual address in address space ``asid``."""
        vpage = vaddr // PAGE_BYTES
        key = (asid, vpage)
        frame = self._page_table.get(key)
        if frame is None:
            frame = self._allocate_frame()
            self._page_table[key] = frame
        return frame * PAGE_BYTES + (vaddr % PAGE_BYTES)

    def _allocate_frame(self) -> int:
        if len(self._used_frames) >= self.total_frames:
            raise CapacityError("physical memory exhausted")
        while True:
            frame = int(self._rng.integers(self.total_frames))
            if frame not in self._used_frames:
                self._used_frames.add(frame)
                return frame

    @property
    def mapped_pages(self) -> int:
        """Virtual pages translated so far."""
        return len(self._page_table)
