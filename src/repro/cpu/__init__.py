"""Processor-side models: trace-driven cores, shared LLC, translation,
and the RPT stride prefetcher used in Figure 12."""

from repro.cpu.cache import CacheConfig, Llc
from repro.cpu.core import Core, CoreConfig
from repro.cpu.prefetcher import RptPrefetcher
from repro.cpu.translation import VirtualMemory

__all__ = [
    "CacheConfig",
    "Llc",
    "Core",
    "CoreConfig",
    "RptPrefetcher",
    "VirtualMemory",
]
