"""LPDDR4 IDD current set.

Representative datasheet values for an LPDDR4 rank, collapsed onto a
single effective supply rail. The refresh burst current (IDD5) grows with
chip density because each REF command restores proportionally more rows —
the effect that makes refresh consume up to ~50% of DRAM energy at high
density (paper Section 1) and drives the Figure 13 trend.

The paper's SALP energy argument rests on one measured datum this model
pins exactly: an idle chip with a single open bank draws 10.9% more
current (IDD3N) than with all banks closed (IDD2N) [73].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["IddCurrents"]

#: IDD5 (refresh burst) current in mA, by density in Gbit.
IDD5_MA_BY_DENSITY = {8: 162.0, 16: 202.0, 32: 262.0, 64: 342.0}


@dataclass(frozen=True)
class IddCurrents:
    """Effective single-rail current set for one rank, in milliamps.

    The standby currents fold in the peripheral/clocking/IO rails that
    DRAMPower accounts separately (the paper's energy numbers come from
    DRAMPower), so background power carries a realistic share of total
    energy; the *increments* (IDD0-IDD3N for activation, IDD4-IDD3N for
    bursts, IDD5-IDD2N for refresh) are datasheet-typical.
    """

    vdd_volts: float = 1.1
    idd0: float = 96.5     # activate-precharge cycling
    idd2n: float = 60.0    # precharge standby (all banks closed)
    idd3n: float = 66.54   # active standby (one bank open) = 1.109 * IDD2N
    idd4r: float = 185.0   # burst read
    idd4w: float = 195.0   # burst write
    idd5: float = 162.0    # refresh burst

    def __post_init__(self) -> None:
        for name in ("vdd_volts", "idd0", "idd2n", "idd3n", "idd4r", "idd4w", "idd5"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.idd3n <= self.idd2n:
            raise ConfigError("active standby must exceed precharge standby")

    @classmethod
    def lpddr4(cls, density_gbit: int = 8) -> "IddCurrents":
        """Current set for a given chip density."""
        if density_gbit not in IDD5_MA_BY_DENSITY:
            raise ConfigError(
                f"density_gbit must be one of {sorted(IDD5_MA_BY_DENSITY)}"
            )
        return cls(idd5=IDD5_MA_BY_DENSITY[density_gbit])

    @property
    def open_buffer_overhead_ma(self) -> float:
        """Extra standby current per open row buffer (IDD3N - IDD2N)."""
        return self.idd3n - self.idd2n
