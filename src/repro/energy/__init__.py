"""DRAMPower-style LPDDR4 energy estimation."""

from repro.energy.idd import IddCurrents
from repro.energy.model import ChannelActivity, EnergyBreakdown, EnergyModel

__all__ = ["IddCurrents", "ChannelActivity", "EnergyBreakdown", "EnergyModel"]
