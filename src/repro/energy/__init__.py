"""DRAMPower-style LPDDR4 energy estimation."""

from repro.energy.idd import IddCurrents
from repro.energy.model import (
    ChannelActivity,
    EnergyBreakdown,
    EnergyCoefficients,
    EnergyModel,
    breakdown_from_coefficients,
)

__all__ = [
    "IddCurrents",
    "ChannelActivity",
    "EnergyBreakdown",
    "EnergyCoefficients",
    "EnergyModel",
    "breakdown_from_coefficients",
]
