"""Command-count + state-residency DRAM energy accounting.

The standard DRAMPower decomposition: per-command incremental energies
(activation/precharge pairs, read and write bursts, refresh bursts) on top
of state-dependent background power (precharge standby plus an increment
for every open row buffer). CROW's ``ACT-t``/``ACT-c`` commands cost 5.8%
more than a conventional activation (paper Figure 7); SALP pays the
open-buffer increment once per *open local row buffer*, which is why its
open-page configurations save latency but burn static energy
(Section 8.1.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from repro.circuit.power import activation_power_overhead
from repro.dram.commands import CommandKind
from repro.dram.device import DramChannel
from repro.dram.timing import TimingParameters
from repro.energy.idd import IddCurrents
from repro.errors import ConfigError

__all__ = [
    "ChannelActivity",
    "EnergyBreakdown",
    "EnergyCoefficients",
    "EnergyModel",
    "breakdown_from_coefficients",
]


@dataclass(frozen=True)
class ChannelActivity:
    """The counters one channel accumulated over the measured interval."""

    n_act: int
    n_act_t: int
    n_act_c: int
    n_rd: int
    n_wr: int
    n_ref: int
    open_buffer_cycles: int
    total_cycles: int
    #: Cycles with >= 1 open row per bank (= ``open_buffer_cycles`` for
    #: conventional banks; smaller for SALP, whose extra concurrently-open
    #: local buffers are charged at the reduced latch rate).
    bank_active_cycles: int = -1

    def __post_init__(self) -> None:
        if self.bank_active_cycles < 0:
            object.__setattr__(
                self, "bank_active_cycles", self.open_buffer_cycles
            )

    @classmethod
    def from_channel(
        cls, channel: DramChannel, total_cycles: int, now: int
    ) -> "ChannelActivity":
        """Collect the counters of ``channel`` into an activity record."""
        counts = channel.counts
        return cls(
            n_act=counts[CommandKind.ACT],
            n_act_t=counts[CommandKind.ACT_T],
            n_act_c=counts[CommandKind.ACT_C],
            n_rd=counts[CommandKind.RD],
            n_wr=counts[CommandKind.WR],
            n_ref=counts[CommandKind.REF],
            open_buffer_cycles=channel.open_buffer_cycles(now),
            total_cycles=total_cycles,
            bank_active_cycles=channel.bank_active_cycles(now),
        )


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy by component, in nanojoules."""

    activation_nj: float
    read_nj: float
    write_nj: float
    refresh_nj: float
    background_nj: float

    def __post_init__(self) -> None:
        # Same policy as analysis.ascii_bars: a NaN/inf joule count is a
        # modelling bug, and letting it propagate through `+` and ratio
        # math silently poisons every downstream figure.
        for field in fields(self):
            value = getattr(self, field.name)
            if not math.isfinite(value):
                raise ConfigError(
                    f"non-finite energy for {field.name!r}: {value!r}"
                )

    @property
    def total_nj(self) -> float:
        """Sum of all energy components."""
        return (
            self.activation_nj
            + self.read_nj
            + self.write_nj
            + self.refresh_nj
            + self.background_nj
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.activation_nj + other.activation_nj,
            self.read_nj + other.read_nj,
            self.write_nj + other.write_nj,
            self.refresh_nj + other.refresh_nj,
            self.background_nj + other.background_nj,
        )


@dataclass(frozen=True)
class EnergyCoefficients:
    """Everything per-config the energy accounting needs, factored out.

    A channel's energy is (coefficients × activity counts): the
    coefficients depend only on the configuration (timing, IDD set,
    MRA overhead), the counts only on the run. The split is what lets
    the :mod:`repro.estimate` record cache pay for a config once per
    campaign instead of once per task, and lets alternative backends
    (CACTI-like analytical models) supply a drop-in coefficient set.
    """

    cycle_ns: float
    act_nj: float
    rd_nj: float
    wr_nj: float
    ref_nj: float
    #: Energy multiplier for each ``ACT-t``/``ACT-c`` (>= 1.0).
    mra_overhead: float
    #: Precharge-standby background current (mA).
    idd2n_ma: float
    #: Extra standby current per first-open row buffer (mA).
    open_buffer_ma: float
    #: Latch-power fraction charged per additional open local buffer.
    extra_buffer_fraction: float
    vdd_volts: float

    def __post_init__(self) -> None:
        for field in fields(self):
            value = getattr(self, field.name)
            if not math.isfinite(value):
                raise ConfigError(
                    f"non-finite energy coefficient "
                    f"{field.name!r}: {value!r}"
                )

    def as_mapping(self) -> dict[str, float]:
        """Flat ``{name: value}`` projection (estimation payloads)."""
        return {
            field.name: getattr(self, field.name) for field in fields(self)
        }

    @classmethod
    def from_mapping(cls, mapping) -> "EnergyCoefficients":
        """Inverse of :meth:`as_mapping`; unknown/missing keys fail."""
        expected = {field.name for field in fields(cls)}
        got = set(mapping)
        if got != expected:
            raise ConfigError(
                f"coefficient set mismatch: missing "
                f"{sorted(expected - got)}, unexpected {sorted(got - expected)}"
            )
        return cls(**{name: float(mapping[name]) for name in expected})


def breakdown_from_coefficients(
    coefficients: EnergyCoefficients, activity: ChannelActivity
) -> EnergyBreakdown:
    """Total energy of one channel over the measured interval.

    This is *the* energy aggregation — :meth:`EnergyModel.breakdown`
    delegates here, so a cached or backend-supplied coefficient set
    reproduces the in-process result bit for bit (same operations in
    the same order; IEEE-754 arithmetic is deterministic).
    """
    c = coefficients
    mra_acts = activity.n_act_t + activity.n_act_c
    activation = (
        activity.n_act + mra_acts * c.mra_overhead
    ) * c.act_nj
    read = activity.n_rd * c.rd_nj
    write = activity.n_wr * c.wr_nj
    refresh = activity.n_ref * c.ref_nj
    # First open buffer per bank costs the full IDD3N increment (bank
    # circuitry); each *additional* concurrently-open local row buffer
    # (SALP) adds only latch power, modelled as a fraction of it.
    extra_buffer_cycles = max(
        0, activity.open_buffer_cycles - activity.bank_active_cycles
    )
    buffer_ma_cycles = (
        c.open_buffer_ma * activity.bank_active_cycles
        + c.open_buffer_ma
        * c.extra_buffer_fraction
        * extra_buffer_cycles
    )
    background = (
        c.idd2n_ma * 1e-3 * activity.total_cycles * c.cycle_ns * c.vdd_volts
        + buffer_ma_cycles * 1e-3 * c.cycle_ns * c.vdd_volts
    )
    return EnergyBreakdown(
        activation_nj=activation,
        read_nj=read,
        write_nj=write,
        refresh_nj=refresh,
        background_nj=background,
    )


class EnergyModel:
    """Energy estimation for one rank/channel."""

    #: Latch-power fraction of the IDD3N increment charged to each
    #: concurrently-open local row buffer beyond the first in a bank.
    EXTRA_BUFFER_FRACTION = 0.3

    def __init__(
        self,
        timing: TimingParameters,
        currents: IddCurrents | None = None,
        mra_power_overhead: float | None = None,
    ) -> None:
        self.timing = timing
        self.currents = currents if currents is not None else IddCurrents.lpddr4()
        self.mra_overhead = (
            activation_power_overhead(2)
            if mra_power_overhead is None
            else 1.0 + mra_power_overhead
        )
        if self.mra_overhead < 1.0:
            raise ConfigError("MRA power overhead cannot be below 1.0")

    # ------------------------------------------------------------------
    # Per-event energies (nJ)
    # ------------------------------------------------------------------
    def _cycle_ns(self) -> float:
        return 1000.0 / self.timing.clock_mhz

    @property
    def act_energy_nj(self) -> float:
        """One conventional activate/precharge pair."""
        i = self.currents
        trc_ns = self.timing.trc * self._cycle_ns()
        return (i.idd0 - i.idd3n) * 1e-3 * trc_ns * i.vdd_volts

    @property
    def rd_energy_nj(self) -> float:
        """Incremental energy of one read burst."""
        i = self.currents
        burst_ns = self.timing.tbl * self._cycle_ns()
        return (i.idd4r - i.idd3n) * 1e-3 * burst_ns * i.vdd_volts

    @property
    def wr_energy_nj(self) -> float:
        """Incremental energy of one write burst."""
        i = self.currents
        burst_ns = self.timing.tbl * self._cycle_ns()
        return (i.idd4w - i.idd3n) * 1e-3 * burst_ns * i.vdd_volts

    @property
    def ref_energy_nj(self) -> float:
        """Incremental energy of one all-bank REF."""
        i = self.currents
        trfc_ns = self.timing.trfc * self._cycle_ns()
        return (i.idd5 - i.idd2n) * 1e-3 * trfc_ns * i.vdd_volts

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def coefficients(self) -> EnergyCoefficients:
        """This model's per-config coefficient set.

        The values are the exact floats :meth:`breakdown` historically
        used, so cached/estimated coefficients reproduce its output bit
        for bit.
        """
        i = self.currents
        return EnergyCoefficients(
            cycle_ns=self._cycle_ns(),
            act_nj=self.act_energy_nj,
            rd_nj=self.rd_energy_nj,
            wr_nj=self.wr_energy_nj,
            ref_nj=self.ref_energy_nj,
            mra_overhead=self.mra_overhead,
            idd2n_ma=i.idd2n,
            open_buffer_ma=i.open_buffer_overhead_ma,
            extra_buffer_fraction=self.EXTRA_BUFFER_FRACTION,
            vdd_volts=i.vdd_volts,
        )

    def breakdown(self, activity: ChannelActivity) -> EnergyBreakdown:
        """Total energy of one channel over the measured interval."""
        return breakdown_from_coefficients(self.coefficients(), activity)
