"""Stable content-keying helpers shared by every cache layer.

Result caches (:mod:`repro.sim.campaign`), the cluster store and the
estimator record cache (:mod:`repro.estimate`) all key entries by a
digest of a *value projection* of their inputs. The projection lives
here, below all of them, so the layers cannot drift: a value that is
safe to key in one cache is safe in every cache, and a value with no
stable representation is rejected identically everywhere.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.errors import ConfigError

__all__ = ["jsonable", "stable_digest"]


def jsonable(value):
    """A stable, identity-free JSON projection of a config value.

    Raises :class:`ConfigError` for values with no stable representation
    (anything that would fall back to the default ``object.__repr__``,
    whose embedded memory address differs between runs and would silently
    poison the cache key).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if hasattr(value, "__dict__"):
        projection = {
            name: jsonable(attr)
            for name, attr in sorted(vars(value).items())
        }
        projection["__class__"] = type(value).__qualname__
        return projection
    if type(value).__repr__ is object.__repr__:
        raise ConfigError(
            f"config value of type {type(value).__qualname__!r} has no "
            "stable representation and cannot be cache-keyed; give it a "
            "deterministic __repr__ or use a dataclass"
        )
    return repr(value)


def stable_digest(payload, length: int = 24) -> str:
    """SHA-256 digest of a JSON-safe payload, stable across processes.

    ``payload`` must already be a JSON projection (see :func:`jsonable`);
    keys are sorted so dict insertion order cannot leak into the digest.
    """
    encoded = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(encoded.encode()).hexdigest()[:length]
