"""Estimation queries and results.

The estimator framework speaks three small value types:

* :class:`EstimateQuery` — what the caller wants estimated: a hardware
  *component* (``"dram-channel"``, ``"row-decoder"``, ...), an *action*
  on it (``"energy-coefficients"``, ``"area"``, ...) and a mapping of
  attributes (timing parameters, row counts, technology node).
* :class:`AccuracyEstimation` — a backend's self-assessed accuracy for
  one query, 0–100 percent. Zero means *unsupported* (the Accelergy
  convention), so "cannot estimate" and "estimates badly" share one
  scale and the arbiter needs no second channel.
* :class:`Estimation` — the answer: a scalar or a named mapping of
  scalars, with explicit unit, the winning backend's name and its
  accuracy. Non-finite values are rejected at construction — an energy
  of NaN joules must fail loudly, not propagate.

Queries are content-addressed (:meth:`EstimateQuery.digest`) with the
same projection the campaign cache uses, which is what makes the record
cache cross-process deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigError
from repro.keying import jsonable, stable_digest

__all__ = ["EstimateQuery", "AccuracyEstimation", "Estimation"]


@dataclass(frozen=True)
class EstimateQuery:
    """One request to the estimator framework.

    ``attributes`` is copied at construction; every value in it must
    have a stable projection (dataclass, plain scalar/collection, or a
    deterministic ``__repr__``) or :meth:`digest` raises
    :class:`ConfigError`.
    """

    component: str
    action: str
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.component or not isinstance(self.component, str):
            raise ConfigError(
                f"query component must be a non-empty string, got "
                f"{self.component!r}"
            )
        if not self.action or not isinstance(self.action, str):
            raise ConfigError(
                f"query action must be a non-empty string, got "
                f"{self.action!r}"
            )
        object.__setattr__(self, "attributes", dict(self.attributes))

    @property
    def label(self) -> str:
        """Human-readable ``component/action`` handle for messages."""
        return f"{self.component}/{self.action}"

    def projection(self) -> dict:
        """Identity-free JSON projection (record-cache key material)."""
        return {
            "component": self.component,
            "action": self.action,
            "attributes": jsonable(dict(self.attributes)),
        }

    def digest(self) -> str:
        """Process-stable content digest of the query."""
        return stable_digest(self.projection())


@dataclass(frozen=True)
class AccuracyEstimation:
    """A backend's self-assessed accuracy for one query, in percent.

    ``percent == 0`` means the backend cannot serve the query at all;
    ``reason`` should then say why (it surfaces in ``EstimateError``
    messages and ``explain`` output).
    """

    percent: float
    reason: str = ""

    def __post_init__(self) -> None:
        value = float(self.percent)
        if not math.isfinite(value) or not 0.0 <= value <= 100.0:
            raise ConfigError(
                f"accuracy percent must be a finite value in [0, 100], "
                f"got {self.percent!r}"
            )
        object.__setattr__(self, "percent", value)

    @property
    def supported(self) -> bool:
        return self.percent > 0.0


@dataclass(frozen=True)
class Estimation:
    """A backend's answer to one query.

    ``value`` is either a single float or a flat ``{name: float}``
    mapping (e.g. a full energy-coefficient set). ``unit`` names the
    physical unit of the value(s). ``backend`` is stamped by the
    arbiter with the registry name of the backend that produced it.
    """

    value: "float | Mapping[str, float]"
    unit: str
    accuracy_percent: float
    backend: str = ""
    notes: tuple = ()

    def __post_init__(self) -> None:
        if isinstance(self.value, Mapping):
            cleaned: "float | dict[str, float]" = {}
            for key, raw in self.value.items():
                cleaned[str(key)] = _finite(raw, f"estimation[{key!r}]")
        else:
            cleaned = _finite(self.value, "estimation value")
        object.__setattr__(self, "value", cleaned)
        accuracy = AccuracyEstimation(self.accuracy_percent)
        object.__setattr__(self, "accuracy_percent", accuracy.percent)
        object.__setattr__(self, "notes", tuple(self.notes))

    def scalar(self) -> float:
        """The value as a single float (ConfigError if it is a set)."""
        if isinstance(self.value, dict):
            raise ConfigError(
                f"estimation holds a coefficient set "
                f"({sorted(self.value)}), not a scalar"
            )
        return self.value

    def mapping(self) -> "dict[str, float]":
        """The value as a named set (ConfigError if it is a scalar)."""
        if not isinstance(self.value, dict):
            raise ConfigError(
                f"estimation holds a scalar ({self.value!r}), not a "
                "coefficient set"
            )
        return dict(self.value)

    def to_payload(self) -> dict:
        """JSON-safe payload; floats round-trip bit-exactly via repr."""
        return {
            "value": dict(self.value)
            if isinstance(self.value, dict)
            else self.value,
            "unit": self.unit,
            "accuracy_percent": self.accuracy_percent,
            "backend": self.backend,
            "notes": list(self.notes),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Estimation":
        """Rebuild from :meth:`to_payload` output (record-cache reads)."""
        try:
            return cls(
                value=payload["value"],
                unit=str(payload["unit"]),
                accuracy_percent=payload["accuracy_percent"],
                backend=str(payload.get("backend", "")),
                notes=tuple(payload.get("notes", ())),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(
                f"malformed estimation payload: {exc!r}"
            ) from exc


def _finite(raw, label: str) -> float:
    try:
        value = float(raw)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{label} is not a number: {raw!r}") from exc
    if not math.isfinite(value):
        raise ConfigError(f"non-finite value for {label}: {raw!r}")
    return value
