"""Superloop-style per-technology exotic-memory backend.

Models memory technologies outside the DRAM mainstream — the shape of
the superloop plug-in exemplar, where each technology is its own small
estimator class carrying its own accuracy grade. The backend serves the
``memory-array`` component and dispatches on a ``technology`` query
attribute; an unknown technology is an *arbitration miss* (accuracy 0
naming the known technologies), never a guess.

The numbers are representative published figures per technology, not
calibrated reproductions — hence accuracy grades below every DRAM
backend. The backend exists so arbitration has a genuinely different
kind of answerer to rank, and so campaigns can price speculative
substrate swaps without forking call sites.
"""

from __future__ import annotations

from repro.estimate.plugin import EstimatorPlugin
from repro.estimate.query import (
    AccuracyEstimation,
    EstimateQuery,
    Estimation,
)
from repro.estimate.registry import register_estimator

__all__ = ["ExoticMemoryEstimator", "TECHNOLOGIES"]


class TechnologyModel:
    """One exotic memory technology: per-bit energies and cell area."""

    technology = ""
    percent_accuracy = 0.0
    read_nj_per_bit = 0.0
    write_nj_per_bit = 0.0
    cell_um2 = 0.0
    leak_nw_per_bit = 0.0


class VtCellRam(TechnologyModel):
    """Josephson-junction VT-cell RAM (superconducting logic)."""

    technology = "vt-cell-ram"
    percent_accuracy = 60.0
    read_nj_per_bit = 2.0e-9
    write_nj_per_bit = 5.0e-9
    cell_um2 = 12.0
    leak_nw_per_bit = 0.0  # static power is the cryostat, not the cell


class DelayLineMemory(TechnologyModel):
    """Acoustic/electric delay-line storage (sequential access)."""

    technology = "delay-line"
    percent_accuracy = 55.0
    read_nj_per_bit = 8.0e-4
    write_nj_per_bit = 8.0e-4
    cell_um2 = 0.9
    leak_nw_per_bit = 4.0e-2  # the line must be continuously refreshed


class CryoCmosSram(TechnologyModel):
    """CMOS SRAM operated at 77 K (reduced leakage, faster sensing)."""

    technology = "cryo-cmos-sram"
    percent_accuracy = 65.0
    read_nj_per_bit = 1.1e-4
    write_nj_per_bit = 1.4e-4
    cell_um2 = 0.055
    leak_nw_per_bit = 1.0e-4


#: Known technologies in declaration order (deterministic listings).
TECHNOLOGIES: dict[str, TechnologyModel] = {
    model.technology: model()
    for model in (VtCellRam, DelayLineMemory, CryoCmosSram)
}


@register_estimator("exotic-memory")
class ExoticMemoryEstimator(EstimatorPlugin):
    """Per-technology estimator for non-DRAM memory arrays.

    Supports ``memory-array`` with actions ``read-energy``,
    ``write-energy``, ``area`` and ``leakage``; required attributes:
    ``technology`` (one of :data:`TECHNOLOGIES`), ``bits`` (array size).
    Accuracy is graded per technology class, superloop-style.
    """

    ACTIONS = ("read-energy", "write-energy", "area", "leakage")

    def supported_components(self) -> tuple[str, ...]:
        return ("memory-array",)

    def _technology(self, query: EstimateQuery) -> "TechnologyModel | None":
        name = query.attributes.get("technology")
        return TECHNOLOGIES.get(name) if isinstance(name, str) else None

    def action_accuracy(self, query: EstimateQuery) -> AccuracyEstimation:
        if query.action not in self.ACTIONS:
            return AccuracyEstimation(
                0.0, f"action {query.action!r} not in {list(self.ACTIONS)}"
            )
        model = self._technology(query)
        if model is None:
            return AccuracyEstimation(
                0.0,
                f"unknown technology "
                f"{query.attributes.get('technology')!r}; known: "
                f"{', '.join(TECHNOLOGIES)}",
            )
        return AccuracyEstimation(
            model.percent_accuracy,
            f"published figures for {model.technology}",
        )

    def estimate(self, query: EstimateQuery) -> Estimation:
        accuracy = self.accuracy(query)
        if not accuracy.supported:
            self.reject(query, accuracy.reason)
        model = self._technology(query)
        bits = self.require(query, "bits", int)
        if bits < 1:
            self.reject(query, f"bits must be >= 1, got {bits}")
        if query.action == "read-energy":
            value, unit = model.read_nj_per_bit * bits, "nJ per full sweep"
        elif query.action == "write-energy":
            value, unit = model.write_nj_per_bit * bits, "nJ per full sweep"
        elif query.action == "area":
            value, unit = model.cell_um2 * bits, "um^2"
        else:
            value, unit = model.leak_nw_per_bit * bits, "nW"
        return Estimation(
            value=value,
            unit=unit,
            accuracy_percent=model.percent_accuracy,
            notes=(f"technology {model.technology}, {bits} bits",),
        )
