"""CACTI-like first-principles analytical backend.

Where the reference backends replay datasheet/layout anchor points,
this backend derives energy and area from the electrical constants in
:class:`repro.circuit.constants.TechnologyParameters` — switched
capacitance for dynamic energy, feature-size scaling for area — the way
CACTI models a memory it has never seen a datasheet for. It answers the
*same* queries as the reference backends with the *same* coefficient
schema, at a lower self-assessed accuracy (the classic CACTI ~70%), so
arbitration has a genuine second opinion to rank: reference backends
win when present, and this backend takes over for technology nodes the
datasheet models know nothing about.

All arithmetic is a pure function of the query, so records cached from
this backend are as deterministic as the reference ones.
"""

from __future__ import annotations

from repro.circuit.constants import TechnologyParameters
from repro.dram.timing import TimingParameters
from repro.estimate.plugin import EstimatorPlugin
from repro.estimate.query import (
    AccuracyEstimation,
    EstimateQuery,
    Estimation,
)
from repro.estimate.registry import register_estimator

__all__ = ["CactiLikeEstimator", "CACTI_ACCURACY"]

#: Self-assessed accuracy of the analytical model (the CACTI convention:
#: good to tens of percent, not to datasheet precision).
CACTI_ACCURACY = 70.0

#: Reference feature size of the builtin TechnologyParameters (nm).
BASE_NODE_NM = 22.0

#: Bits restored per activation: one 8 KiB DRAM row.
ROW_BITS = 8 * 1024 * 8

#: Internal prefetch width feeding the IO burst, bits per burst cycle.
IO_BITS_PER_CYCLE = 256

#: IO + internal bus energy per transferred bit (nJ); writes drive the
#: cell array on top of the bus.
READ_NJ_PER_BIT = 1.1e-3
WRITE_NJ_PER_BIT = 1.25e-3

#: Wordline + decoder switching adder on top of bitline energy.
WORDLINE_ADDER = 1.05

#: Precharge-standby leakage current at the base node (mA).
BASE_STANDBY_MA = 55.0

#: Sense-amp latch standby adder per open row buffer, as a fraction of
#: the standby current (cf. the measured IDD3N/IDD2N = 1.109 datum).
OPEN_BUFFER_FRACTION = 0.11

#: Latch-power fraction per additional concurrently-open local buffer
#: (structural constant shared with the reference decomposition).
EXTRA_BUFFER_FRACTION = 0.3

#: Row-decoder area: wordline-driver footprint per row and predecode
#: block, both quadratic in feature size (transistor-limited layout).
DRIVER_UM2_PER_ROW_PER_NM2 = 0.00086
PREDECODE_UM2_PER_NM2 = 0.018


@register_estimator("cacti-analytical")
class CactiLikeEstimator(EstimatorPlugin):
    """Technology-node-scaled analytical energy/area model.

    Supported queries:

    * ``dram-channel`` / ``energy-coefficients`` — attributes:
      ``timing`` (:class:`TimingParameters`, required), ``technology``
      (:class:`TechnologyParameters`, default builtin 22 nm),
      ``node_nm`` (float, default 22.0), ``row_bits`` (int, default one
      8 KiB row), ``mra_power_overhead`` (honoured when given, else
      derived from the cell/bitline capacitance ratio).
    * ``row-decoder`` / ``area`` — attributes: ``rows`` (required),
      ``node_nm``.
    """

    percent_accuracy = CACTI_ACCURACY

    ACTIONS = {
        "dram-channel": ("energy-coefficients",),
        "row-decoder": ("area",),
    }

    def supported_components(self) -> tuple[str, ...]:
        return tuple(self.ACTIONS)

    def action_accuracy(self, query: EstimateQuery) -> AccuracyEstimation:
        supported = self.ACTIONS[query.component]
        if query.action not in supported:
            return AccuracyEstimation(
                0.0, f"action {query.action!r} not in {list(supported)}"
            )
        return AccuracyEstimation(
            self.percent_accuracy,
            "first-principles switched-capacitance model",
        )

    # ----------------------------------------------------------------
    def _node_nm(self, query: EstimateQuery) -> float:
        node = float(query.attributes.get("node_nm", BASE_NODE_NM))
        if node <= 0.0:
            self.reject(query, f"node_nm must be positive, got {node}")
        return node

    def _technology(self, query: EstimateQuery) -> TechnologyParameters:
        technology = query.attributes.get("technology")
        if technology is None:
            return TechnologyParameters()
        if not isinstance(technology, TechnologyParameters):
            self.reject(
                query,
                f"attribute 'technology' must be TechnologyParameters, "
                f"got {type(technology).__name__}",
            )
        return technology

    def estimate(self, query: EstimateQuery) -> Estimation:
        if not self.accuracy(query).supported:
            self.reject(query, self.accuracy(query).reason)
        if query.component == "row-decoder":
            return self._decoder_area(query)
        return self._energy_coefficients(query)

    def _decoder_area(self, query: EstimateQuery) -> Estimation:
        rows = self.require(query, "rows", int)
        if rows < 1:
            self.reject(query, f"rows must be >= 1, got {rows}")
        node = self._node_nm(query)
        area = (
            PREDECODE_UM2_PER_NM2 * node * node
            + DRIVER_UM2_PER_ROW_PER_NM2 * node * node * rows
        )
        return Estimation(
            value=area,
            unit="um^2",
            accuracy_percent=self.percent_accuracy,
            notes=(f"transistor-limited layout at {node:g} nm",),
        )

    def _energy_coefficients(self, query: EstimateQuery) -> Estimation:
        timing = self.require(query, "timing", TimingParameters)
        technology = self._technology(query)
        node = self._node_nm(query)
        row_bits = int(query.attributes.get("row_bits", ROW_BITS))
        if row_bits < 1:
            self.reject(query, f"row_bits must be >= 1, got {row_bits}")

        # Linear-dimension scaling: capacitance and leakage track
        # feature size to first order.
        scale = node / BASE_NODE_NM
        vdd = technology.vdd_volts
        cell_ff = technology.cell_capacitance_ff * scale
        bitline_ff = technology.bitline_capacitance_ff * scale
        cycle_ns = 1000.0 / timing.clock_mhz

        # One activation swings every bitline of the row (charge-share
        # then full restore): E = 1/2 (Cb + Cc) Vdd^2 per bitline, plus
        # the wordline/decoder adder. fF * V^2 = 1e-15 J = 1e-6 nJ.
        act_nj = (
            0.5 * (bitline_ff + cell_ff) * 1e-6 * vdd * vdd * row_bits
        ) * WORDLINE_ADDER
        burst_bits = timing.tbl * IO_BITS_PER_CYCLE
        rd_nj = burst_bits * READ_NJ_PER_BIT * scale
        wr_nj = burst_bits * WRITE_NJ_PER_BIT * scale
        # A refresh burst is back-to-back row restores for tRFC.
        ref_nj = act_nj * (timing.trfc / timing.trc)

        mra = query.attributes.get("mra_power_overhead")
        if mra is None:
            # Second wordline + the extra cell capacitor on each
            # bitline, relative to the full bitline swing.
            mra_overhead = 1.0 + technology.capacitance_ratio * 0.25
        else:
            mra_overhead = 1.0 + float(mra)
        if mra_overhead < 1.0:
            self.reject(
                query,
                f"mra_power_overhead must be >= 0, got {mra!r}",
            )

        standby_ma = BASE_STANDBY_MA * scale
        value = {
            "cycle_ns": cycle_ns,
            "act_nj": act_nj,
            "rd_nj": rd_nj,
            "wr_nj": wr_nj,
            "ref_nj": ref_nj,
            "mra_overhead": mra_overhead,
            "idd2n_ma": standby_ma,
            "open_buffer_ma": standby_ma * OPEN_BUFFER_FRACTION,
            "extra_buffer_fraction": EXTRA_BUFFER_FRACTION,
            "vdd_volts": vdd,
        }
        return Estimation(
            value=value,
            unit="energy-coefficient set (nJ, mA, ns)",
            accuracy_percent=self.percent_accuracy,
            notes=(
                f"switched-capacitance model at {node:g} nm "
                f"({row_bits} bits/row)",
            ),
        )
