"""The estimator registry: name -> :class:`EstimatorPlugin`.

Builtin backends self-register on first lookup (lazy import, so merely
importing :mod:`repro.estimate` never drags in the backend
implementations). Registration order is deliberate and stable: the two
reference backends first — they must win arbitration ties against
later-added analytical models, keeping the paper-reproduction outputs
byte-identical — then the analytical and exotic backends.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.errors import ConfigError
from repro.estimate.plugin import EstimatorPlugin

__all__ = ["register_estimator", "get_estimator", "estimator_names"]

_REGISTRY: dict[str, EstimatorPlugin] = {}
_builtins_loaded = False

P = TypeVar("P", bound=type[EstimatorPlugin])


def register_estimator(name: str) -> Callable[[P], P]:
    """Class decorator registering an :class:`EstimatorPlugin` subclass.

    ::

        @register_estimator("cacti-analytical")
        class CactiLikeEstimator(EstimatorPlugin):
            def supported_components(self): ...

    The decorated class is instantiated once; the instance must be
    stateless (estimations are pure functions of the query). Registering
    a name twice raises :class:`~repro.errors.ConfigError` — backends
    are process-global, and a silent overwrite would let an import-order
    accident change which model answers every energy query.
    """
    if not name:
        raise ConfigError("estimator name must be non-empty")

    def decorate(cls: P) -> P:
        if name in _REGISTRY:
            raise ConfigError(
                f"estimator {name!r} is already registered "
                f"(by {type(_REGISTRY[name]).__name__}); "
                f"registered estimators: {', '.join(sorted(_REGISTRY))}"
            )
        plugin = cls()
        plugin.name = name
        _REGISTRY[name] = plugin
        return cls

    return decorate


def _ensure_builtins() -> None:
    """Import the builtin backend modules exactly once."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    # Reference backends first: their registration order is the
    # arbitration tie-break, and they must shadow same-accuracy
    # analytical models so benchmark outputs stay byte-identical.
    import repro.estimate.reference  # noqa: F401
    import repro.estimate.cacti  # noqa: F401
    import repro.estimate.exotic  # noqa: F401


def get_estimator(name: str) -> EstimatorPlugin:
    """The backend registered under ``name``.

    Raises :class:`~repro.errors.ConfigError` listing every registered
    backend when the name is unknown — the single validation point
    behind the arbiter and the ``python -m repro estimate`` CLI.
    """
    _ensure_builtins()
    plugin = _REGISTRY.get(name)
    if plugin is None:
        raise ConfigError(
            f"unknown estimator {name!r}; registered estimators: "
            f"{', '.join(estimator_names())}"
        )
    return plugin


def estimator_names() -> tuple[str, ...]:
    """All registered backend names, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)
