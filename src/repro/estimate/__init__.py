"""Pluggable energy/area estimation with accuracy arbitration.

The Accelergy architecture on the :mod:`repro.mech` registry skeleton:
estimator *backends* register under stable names, self-assess a 0–100
accuracy per query, and an *arbiter* sends each query to every capable
backend and keeps the most accurate answer. The two reference backends
are byte-identical ports of the paper-calibrated models
(:mod:`repro.energy`, :mod:`repro.circuit`); analytical and exotic
backends give arbitration real choices. A persistent content-addressed
record cache in front makes campaign-scale estimation O(distinct
configs).

Entry points: :func:`repro.estimate.runtime.default_arbiter` (shared
instance), ``python -m repro estimate`` (CLI), and the convenience
helpers in :mod:`repro.estimate.runtime`.
"""

from repro.estimate.arbiter import EstimatorArbiter
from repro.estimate.plugin import EstimatorPlugin
from repro.estimate.query import (
    AccuracyEstimation,
    EstimateQuery,
    Estimation,
)
from repro.estimate.records import RECORD_VERSION, RecordCache
from repro.estimate.registry import (
    estimator_names,
    get_estimator,
    register_estimator,
)

__all__ = [
    "AccuracyEstimation",
    "EstimateQuery",
    "Estimation",
    "EstimatorArbiter",
    "EstimatorPlugin",
    "RecordCache",
    "RECORD_VERSION",
    "estimator_names",
    "get_estimator",
    "register_estimator",
]
