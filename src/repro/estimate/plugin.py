"""Estimator backend interface.

An estimator backend models the energy and/or area of some family of
hardware components. Backends register with
:func:`repro.estimate.registry.register_estimator` and are consulted by
the :class:`repro.estimate.arbiter.EstimatorArbiter`, which sends every
query to every registered backend and keeps the most accurate answer —
the Accelergy arbitration model, on the same registry skeleton as
:class:`repro.mech.MechanismPlugin`.

Contract:

* :meth:`supported_components` declares which query components the
  backend understands at all.
* :meth:`accuracy` self-assesses one query on a 0–100 percent scale;
  0 means unsupported. The base class answers 0 for undeclared
  components and delegates declared ones to :meth:`action_accuracy`.
* :meth:`estimate` answers a query it previously claimed to support.
  A backend must *never* return a silent zero for something it cannot
  model — raise :class:`EstimateError` (see :meth:`reject`) instead.
"""

from __future__ import annotations

from typing import NoReturn

from repro.errors import EstimateError
from repro.estimate.query import (
    AccuracyEstimation,
    EstimateQuery,
    Estimation,
)

__all__ = ["EstimatorPlugin"]


class EstimatorPlugin:
    """Base class for estimator backends.

    Subclasses set :attr:`percent_accuracy` (their default self-assessed
    accuracy) and override :meth:`supported_components` and
    :meth:`estimate`; :attr:`name` is assigned by the registry at
    registration time.
    """

    #: Registry name; assigned by ``@register_estimator``.
    name: str = ""

    #: Default self-assessed accuracy for supported queries (0–100).
    percent_accuracy: float = 0.0

    # ----------------------------------------------------------------
    # Hooks
    # ----------------------------------------------------------------
    def supported_components(self) -> "tuple[str, ...]":
        """Query components this backend understands at all."""
        raise NotImplementedError

    def action_accuracy(self, query: EstimateQuery) -> AccuracyEstimation:
        """Accuracy for a query whose component is supported.

        Default: :attr:`percent_accuracy` for every action. Backends
        that support only some actions (or grade accuracy per query)
        override this.
        """
        return AccuracyEstimation(self.percent_accuracy)

    def estimate(self, query: EstimateQuery) -> Estimation:
        """Answer a supported query (raise EstimateError otherwise)."""
        raise NotImplementedError

    # ----------------------------------------------------------------
    # Framework plumbing (not meant to be overridden)
    # ----------------------------------------------------------------
    def accuracy(self, query: EstimateQuery) -> AccuracyEstimation:
        """Self-assessed accuracy; 0 percent means unsupported."""
        if query.component not in self.supported_components():
            return AccuracyEstimation(
                0.0,
                f"component {query.component!r} not in "
                f"{list(self.supported_components())}",
            )
        return self.action_accuracy(query)

    def reject(self, query: EstimateQuery, reason: str) -> NoReturn:
        """Refuse a query with a structured, attributable error."""
        raise EstimateError(
            f"backend {self.name or type(self).__name__!r} cannot "
            f"estimate {query.label}: {reason}",
            query=query,
            reasons=(reason,),
        )

    def require(self, query: EstimateQuery, name: str, kind=None):
        """Fetch a required query attribute, with type enforcement.

        ``kind`` (a type or tuple of types) is checked when given;
        missing or mistyped attributes raise :class:`EstimateError`
        naming the attribute, so callers see *which* input was wrong
        rather than a downstream TypeError.
        """
        if name not in query.attributes:
            self.reject(query, f"missing required attribute {name!r}")
        value = query.attributes[name]
        if kind is not None and not isinstance(value, kind):
            expected = getattr(kind, "__name__", str(kind))
            self.reject(
                query,
                f"attribute {name!r} must be {expected}, got "
                f"{type(value).__name__}",
            )
        return value
