"""Accuracy-ranked arbitration over every registered backend.

The arbiter is the framework's front door: callers hand it a query, it
asks every backend for a self-assessed accuracy, and the most accurate
supported backend answers. Ties break by registration order (reference
backends register first, so the paper-reproduction models win ties by
construction). When a record cache is attached, the answer is looked up
before any backend runs and published after — campaign-scale estimation
becomes O(distinct configs), not O(tasks).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional

from repro.errors import EstimateError
from repro.estimate.plugin import EstimatorPlugin
from repro.estimate.query import (
    AccuracyEstimation,
    EstimateQuery,
    Estimation,
)
from repro.estimate.records import RecordCache
from repro.estimate.registry import estimator_names, get_estimator

__all__ = ["EstimatorArbiter"]


class EstimatorArbiter:
    """Select-by-accuracy dispatch over estimator backends.

    ``names`` restricts arbitration to a subset of registered backends
    (default: all, in registration order). ``cache`` is an optional
    :class:`RecordCache` consulted before and populated after every
    backend call.

    Counters: ``backend_calls`` counts queries actually answered by a
    backend, ``served_from_cache`` those satisfied by a record — the
    pair is what the O(distinct configs) campaign test asserts on.
    """

    def __init__(
        self,
        names: "Optional[Iterable[str]]" = None,
        cache: "Optional[RecordCache]" = None,
    ) -> None:
        self.names = tuple(names) if names is not None else None
        self.cache = cache
        self.backend_calls = 0
        self.served_from_cache = 0

    def _candidates(self) -> "tuple[str, ...]":
        if self.names is not None:
            # Validate eagerly so a typo fails as ConfigError, not as a
            # mysterious "no backend supports" arbitration miss.
            for name in self.names:
                get_estimator(name)
            return self.names
        return estimator_names()

    # ----------------------------------------------------------------
    # Arbitration
    # ----------------------------------------------------------------
    def rankings(
        self, query: EstimateQuery
    ) -> "list[tuple[EstimatorPlugin, AccuracyEstimation]]":
        """Every candidate backend with its accuracy, best first.

        The sort is stable, so equal accuracies keep registration
        order — the deterministic tie-break the reference backends
        rely on.
        """
        plugins = [get_estimator(name) for name in self._candidates()]
        ranked = [(plugin, plugin.accuracy(query)) for plugin in plugins]
        ranked.sort(key=lambda pair: -pair[1].percent)
        return ranked

    def select(
        self, query: EstimateQuery
    ) -> "tuple[EstimatorPlugin, AccuracyEstimation]":
        """The winning backend, or a structured refusal.

        Raises :class:`EstimateError` carrying every backend's refusal
        reason when no candidate supports the query — never a silent
        zero.
        """
        ranked = self.rankings(query)
        if ranked and ranked[0][1].supported:
            return ranked[0]
        reasons = tuple(
            f"{plugin.name}: {accuracy.reason or 'unsupported'}"
            for plugin, accuracy in ranked
        )
        raise EstimateError(
            f"no registered estimator supports {query.label} "
            f"(asked {len(ranked)}: {'; '.join(reasons) or 'none'})",
            query=query,
            reasons=reasons,
        )

    def explain(self, query: EstimateQuery) -> "list[dict]":
        """Arbitration table for one query (CLI / telemetry food)."""
        ranked = self.rankings(query)
        winner = next(
            (p for p, a in ranked if a.supported), None
        )
        return [
            {
                "backend": plugin.name,
                "accuracy_percent": accuracy.percent,
                "reason": accuracy.reason,
                "selected": plugin is winner,
            }
            for plugin, accuracy in ranked
        ]

    # ----------------------------------------------------------------
    # Estimation
    # ----------------------------------------------------------------
    def estimate(self, query: EstimateQuery) -> Estimation:
        """Cache-checked, accuracy-arbitrated answer to ``query``."""
        if self.cache is not None:
            cached = self.cache.load(query)
            if cached is not None:
                self.served_from_cache += 1
                return cached
        plugin, accuracy = self.select(query)
        estimation = plugin.estimate(query)
        # The registry name is authoritative — a backend cannot
        # masquerade as another, and cached records stay attributable.
        estimation = replace(estimation, backend=plugin.name)
        self.backend_calls += 1
        if self.cache is not None:
            self.cache.store(query, estimation)
        return estimation
