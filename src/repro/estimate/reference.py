"""Reference backends: the paper-calibrated models, ported verbatim.

These two backends wrap :class:`repro.energy.EnergyModel` and
:class:`repro.circuit.area.DecoderAreaModel` without touching a single
float — they *are* the pre-framework models, re-addressed through
queries. Their answers must be byte-identical to direct model calls
(the benchmarks assert this), which is why they carry the highest
accuracies and register first: arbitration must keep selecting them for
the paper-reproduction outputs.
"""

from __future__ import annotations

from repro.circuit.area import DecoderAreaModel
from repro.circuit.power import activation_power_overhead
from repro.dram.timing import TimingParameters
from repro.energy.idd import IddCurrents
from repro.energy.model import EnergyModel
from repro.estimate.plugin import EstimatorPlugin
from repro.estimate.query import (
    AccuracyEstimation,
    EstimateQuery,
    Estimation,
)
from repro.estimate.registry import register_estimator

__all__ = ["IddEnergyEstimator", "CircuitAreaEstimator"]


@register_estimator("idd-reference")
class IddEnergyEstimator(EstimatorPlugin):
    """DRAMPower-style IDD energy model (the paper's methodology).

    Supports ``dram-channel`` / ``energy-coefficients``: given
    ``timing`` (:class:`TimingParameters`), ``currents``
    (:class:`IddCurrents`) and an optional ``mra_power_overhead``, it
    returns the full per-config coefficient set of
    :meth:`repro.energy.EnergyModel.coefficients` — datasheet-anchored,
    hence the high self-assessed accuracy.
    """

    percent_accuracy = 90.0

    COMPONENTS = ("dram-channel",)
    ACTIONS = ("energy-coefficients",)

    def supported_components(self) -> tuple[str, ...]:
        return self.COMPONENTS

    def action_accuracy(self, query: EstimateQuery) -> AccuracyEstimation:
        if query.action not in self.ACTIONS:
            return AccuracyEstimation(
                0.0, f"action {query.action!r} not in {list(self.ACTIONS)}"
            )
        return AccuracyEstimation(
            self.percent_accuracy,
            "datasheet IDD currents, DRAMPower decomposition",
        )

    def estimate(self, query: EstimateQuery) -> Estimation:
        if not self.accuracy(query).supported:
            self.reject(query, self.accuracy(query).reason)
        timing = self.require(query, "timing", TimingParameters)
        currents = self.require(query, "currents", IddCurrents)
        mra = query.attributes.get("mra_power_overhead")
        model = EnergyModel(timing, currents, mra)
        return Estimation(
            value=model.coefficients().as_mapping(),
            unit="energy-coefficient set (nJ, mA, ns)",
            accuracy_percent=self.percent_accuracy,
            notes=(
                "byte-identical port of repro.energy.EnergyModel",
            ),
        )


@register_estimator("circuit-reference")
class CircuitAreaEstimator(EstimatorPlugin):
    """Paper-calibrated decoder/substrate area and activation power.

    Wraps :class:`DecoderAreaModel` (CACTI/layout anchor points from the
    paper's Section 6) and :func:`activation_power_overhead` (SPICE
    anchor, Figure 7 left). Components and actions:

    ================== ================= ===============================
    component          action            required attributes
    ================== ================= ===============================
    ``row-decoder``    ``area``          ``rows``
    ``crow-substrate`` ``overheads``     ``copy_rows``
    ``tldram-substrate`` ``chip-overhead`` ``near_rows``
    ``salp-substrate`` ``chip-overhead`` ``subarrays_per_bank``
    ``activation-power`` ``overhead``    ``n_rows``
    ================== ================= ===============================

    An optional ``model`` attribute (:class:`DecoderAreaModel`) replaces
    the default calibration.
    """

    percent_accuracy = 95.0

    ACTIONS = {
        "row-decoder": ("area",),
        "crow-substrate": ("overheads",),
        "tldram-substrate": ("chip-overhead",),
        "salp-substrate": ("chip-overhead",),
        "activation-power": ("overhead",),
    }

    def supported_components(self) -> tuple[str, ...]:
        return tuple(self.ACTIONS)

    def action_accuracy(self, query: EstimateQuery) -> AccuracyEstimation:
        supported = self.ACTIONS[query.component]
        if query.action not in supported:
            return AccuracyEstimation(
                0.0, f"action {query.action!r} not in {list(supported)}"
            )
        return AccuracyEstimation(
            self.percent_accuracy,
            "calibrated to the paper's CACTI/layout/SPICE points",
        )

    def _model(self, query: EstimateQuery) -> DecoderAreaModel:
        model = query.attributes.get("model")
        if model is None:
            return DecoderAreaModel()
        if not isinstance(model, DecoderAreaModel):
            self.reject(
                query,
                f"attribute 'model' must be DecoderAreaModel, got "
                f"{type(model).__name__}",
            )
        return model

    def estimate(self, query: EstimateQuery) -> Estimation:
        if not self.accuracy(query).supported:
            self.reject(query, self.accuracy(query).reason)
        handler = {
            "row-decoder": self._row_decoder,
            "crow-substrate": self._crow,
            "tldram-substrate": self._tldram,
            "salp-substrate": self._salp,
            "activation-power": self._activation_power,
        }[query.component]
        value, unit = handler(query)
        return Estimation(
            value=value,
            unit=unit,
            accuracy_percent=self.percent_accuracy,
            notes=(
                "byte-identical port of repro.circuit "
                "(DecoderAreaModel / activation_power_overhead)",
            ),
        )

    def _row_decoder(self, query: EstimateQuery):
        rows = self.require(query, "rows", int)
        return self._model(query).decoder_area_um2(rows), "um^2"

    def _crow(self, query: EstimateQuery):
        copy_rows = self.require(query, "copy_rows", int)
        model = self._model(query)
        value = {
            "decoder_area_um2": model.decoder_area_um2(copy_rows),
            "decoder_overhead": model.copy_decoder_overhead(copy_rows),
            "chip_overhead": model.crow_chip_overhead(copy_rows),
            "capacity_overhead": model.crow_capacity_overhead(copy_rows),
        }
        return value, "um^2 / fraction set"

    def _tldram(self, query: EstimateQuery):
        near_rows = self.require(query, "near_rows", int)
        return (
            self._model(query).tldram_chip_overhead(near_rows),
            "fraction of chip area",
        )

    def _salp(self, query: EstimateQuery):
        subarrays = self.require(query, "subarrays_per_bank", int)
        return (
            self._model(query).salp_chip_overhead(subarrays),
            "fraction of chip area",
        )

    def _activation_power(self, query: EstimateQuery):
        n_rows = self.require(query, "n_rows", int)
        per_row = query.attributes.get("per_row_overhead")
        if per_row is None:
            value = activation_power_overhead(n_rows)
        else:
            value = activation_power_overhead(n_rows, float(per_row))
        return value, "multiplier of single-ACT power"
