"""Persistent, content-addressed estimation record cache.

Campaigns ask for the same per-config energy coefficients once per
*task*; the record cache makes the framework pay for them once per
*distinct config*. Each record is one JSON file named by the query's
component/action slug plus its content digest, so the cache is
cross-process deterministic: any worker that computes the record writes
the same bytes under the same name.

Write discipline matches the Campaign cache: records are written to a
process-unique temp file and published with :func:`os.replace`, so
readers never observe a torn record and concurrent writers last-write-win
with identical content. Corrupt or version-mismatched records are
unlinked and recomputed (counted in ``repairs``), never trusted.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

from repro.estimate.query import EstimateQuery, Estimation
from repro.errors import ConfigError

__all__ = ["RecordCache", "RECORD_VERSION"]

#: Bump when a change invalidates previously-cached estimation records.
RECORD_VERSION = 1

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def _slug(text: str) -> str:
    return _SLUG_RE.sub("-", text.lower()).strip("-") or "query"


class RecordCache:
    """Directory of persisted :class:`Estimation` records.

    Counters: ``hits`` / ``misses`` track lookups, ``stores`` successful
    publishes, ``repairs`` corrupt records discarded. All are
    process-local bookkeeping — the on-disk state carries no counters,
    so cached bytes stay deterministic.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.repairs = 0

    # ----------------------------------------------------------------
    # Addressing
    # ----------------------------------------------------------------
    def path_for(self, query: EstimateQuery) -> Path:
        """The record file this query addresses (may not exist yet)."""
        slug = _slug(f"{query.component}-{query.action}")
        return self.directory / f"{slug}-{query.digest()}.json"

    # ----------------------------------------------------------------
    # Lookup / publish
    # ----------------------------------------------------------------
    def load(self, query: EstimateQuery) -> "Estimation | None":
        """The cached estimation for ``query``, or ``None`` on a miss.

        A record that cannot be parsed, carries the wrong version, or
        answers a *different* query (digest collision, hand-edited
        file) is unlinked and reported as a miss — recomputing is
        always safe, trusting a bad record never is.
        """
        path = self.path_for(query)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if payload["version"] != RECORD_VERSION:
                raise ConfigError(
                    f"record version {payload['version']!r} != "
                    f"{RECORD_VERSION}"
                )
            if payload["query"] != query.projection():
                raise ConfigError("record answers a different query")
            estimation = Estimation.from_payload(payload["estimation"])
        except (ConfigError, KeyError, TypeError, ValueError):
            self.repairs += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return estimation

    def store(self, query: EstimateQuery, estimation: Estimation) -> None:
        """Atomically publish ``estimation`` as the record for ``query``."""
        path = self.path_for(query)
        payload = {
            "version": RECORD_VERSION,
            "query": query.projection(),
            "estimation": estimation.to_payload(),
        }
        encoded = json.dumps(
            payload, sort_keys=True, allow_nan=False, indent=1
        )
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(encoded + "\n")
            os.replace(tmp, path)
            self.stores += 1
        finally:
            tmp.unlink(missing_ok=True)

    # ----------------------------------------------------------------
    # Introspection
    # ----------------------------------------------------------------
    def stats(self) -> dict:
        """Counters plus on-disk footprint, for the CLI and tests."""
        records = sorted(self.directory.glob("*.json"))
        return {
            "directory": str(self.directory),
            "entries": len(records),
            "bytes": sum(record.stat().st_size for record in records),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "repairs": self.repairs,
        }
