"""Process-level estimator wiring: default arbiter, memo, query builders.

Everything in the package below this module is mechanism: backends,
arbitration, records. This module is policy — the single arbiter
instance the simulator, benchmarks and CLI share, the environment knob
that attaches a persistent record cache
(``REPRO_ESTIMATE_CACHE=<dir>``), and an in-process memo for the one
query on the simulator's hot path (per-config channel-energy
coefficients), which is what makes campaign estimation O(distinct
configs) regardless of task count.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.dram.timing import TimingParameters
from repro.energy.idd import IddCurrents
from repro.energy.model import EnergyCoefficients
from repro.estimate.arbiter import EstimatorArbiter
from repro.estimate.query import EstimateQuery
from repro.estimate.records import RecordCache

__all__ = [
    "ESTIMATE_CACHE_ENV",
    "default_arbiter",
    "set_default_arbiter",
    "reset_default_arbiter",
    "channel_energy_query",
    "channel_coefficients",
    "crow_overheads_query",
    "crow_overheads",
    "decoder_area_query",
    "decoder_area_um2",
    "activation_power_query",
    "activation_power",
    "estimate_stats",
]

#: Point this at a directory to persist estimation records across
#: processes (campaign workers, repeated benchmark invocations).
ESTIMATE_CACHE_ENV = "REPRO_ESTIMATE_CACHE"

_default: "Optional[EstimatorArbiter]" = None

#: Per-process memo of channel coefficient sets, keyed by query digest.
#: Purely an allocation saver on the simulator hot path — the values
#: are exactly what the arbiter would return.
_coefficient_memo: "dict[str, EnergyCoefficients]" = {}


def default_arbiter() -> EstimatorArbiter:
    """The process-wide arbiter (built on first use).

    Attaches a :class:`RecordCache` when ``REPRO_ESTIMATE_CACHE`` names
    a directory; otherwise runs cache-less (backends are cheap enough
    for interactive use, and tests stay filesystem-free by default).
    """
    global _default
    if _default is None:
        directory = os.environ.get(ESTIMATE_CACHE_ENV)
        cache = RecordCache(directory) if directory else None
        _default = EstimatorArbiter(cache=cache)
    return _default


def set_default_arbiter(arbiter: EstimatorArbiter) -> None:
    """Replace the process-wide arbiter (tests, embedding tools)."""
    global _default
    _default = arbiter
    _coefficient_memo.clear()


def reset_default_arbiter() -> None:
    """Drop the arbiter and memo; next use rebuilds from environment."""
    global _default
    _default = None
    _coefficient_memo.clear()


# --------------------------------------------------------------------
# Query builders (one per call site family, so digests are uniform)
# --------------------------------------------------------------------
def channel_energy_query(
    timing: TimingParameters,
    currents: IddCurrents,
    mra_power_overhead: "Optional[float]" = None,
) -> EstimateQuery:
    """The per-config DRAM channel energy-coefficient query."""
    return EstimateQuery(
        component="dram-channel",
        action="energy-coefficients",
        attributes={
            "timing": timing,
            "currents": currents,
            "mra_power_overhead": mra_power_overhead,
        },
    )


def crow_overheads_query(copy_rows: int) -> EstimateQuery:
    """CROW substrate area/capacity overhead set."""
    return EstimateQuery(
        component="crow-substrate",
        action="overheads",
        attributes={"copy_rows": copy_rows},
    )


def decoder_area_query(rows: int) -> EstimateQuery:
    """Row-decoder area for ``rows`` wordlines."""
    return EstimateQuery(
        component="row-decoder",
        action="area",
        attributes={"rows": rows},
    )


def activation_power_query(n_rows: int) -> EstimateQuery:
    """Multiple-row-activation power multiplier."""
    return EstimateQuery(
        component="activation-power",
        action="overhead",
        attributes={"n_rows": n_rows},
    )


# --------------------------------------------------------------------
# Arbitrated conveniences
# --------------------------------------------------------------------
def channel_coefficients(
    timing: TimingParameters,
    currents: IddCurrents,
    mra_power_overhead: "Optional[float]" = None,
    arbiter: "Optional[EstimatorArbiter]" = None,
) -> EnergyCoefficients:
    """Arbitrated per-config energy coefficients, memoized per process.

    The memo only serves the default arbiter — an explicitly passed
    arbiter always answers itself (tests rely on observing its
    counters).
    """
    query = channel_energy_query(timing, currents, mra_power_overhead)
    use_memo = arbiter is None
    key = query.digest()
    if use_memo:
        memoized = _coefficient_memo.get(key)
        if memoized is not None:
            return memoized
    chosen = arbiter if arbiter is not None else default_arbiter()
    coefficients = EnergyCoefficients.from_mapping(
        chosen.estimate(query).mapping()
    )
    if use_memo:
        _coefficient_memo[key] = coefficients
    return coefficients


def crow_overheads(
    copy_rows: int, arbiter: "Optional[EstimatorArbiter]" = None
) -> "dict[str, float]":
    """Arbitrated CROW substrate overhead set (Figure 7 right, Sec 6)."""
    chosen = arbiter if arbiter is not None else default_arbiter()
    return chosen.estimate(crow_overheads_query(copy_rows)).mapping()


def decoder_area_um2(
    rows: int, arbiter: "Optional[EstimatorArbiter]" = None
) -> float:
    """Arbitrated row-decoder area in µm²."""
    chosen = arbiter if arbiter is not None else default_arbiter()
    return chosen.estimate(decoder_area_query(rows)).scalar()


def activation_power(
    n_rows: int, arbiter: "Optional[EstimatorArbiter]" = None
) -> float:
    """Arbitrated MRA activation-power multiplier (Figure 7 left)."""
    chosen = arbiter if arbiter is not None else default_arbiter()
    return chosen.estimate(activation_power_query(n_rows)).scalar()


def estimate_stats() -> dict:
    """Counters of the default arbiter (CLI ``estimate cache``)."""
    arbiter = default_arbiter()
    stats = {
        "backend_calls": arbiter.backend_calls,
        "served_from_cache": arbiter.served_from_cache,
        "memoized_coefficient_sets": len(_coefficient_memo),
        "record_cache": None,
    }
    if arbiter.cache is not None:
        stats["record_cache"] = arbiter.cache.stats()
    return stats
