"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
cannot take the PEP 660 build path; this shim enables the classic
``setup.py develop`` editable install. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
