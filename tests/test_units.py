"""Tests for unit conversions and the exception hierarchy."""

import pytest
from hypothesis import given, strategies as st

from repro import errors
from repro.units import GIB, KIB, MIB, cycles_to_ns, ms_to_cycles, ns_to_cycles, us_to_cycles


class TestConversions:
    def test_lpddr4_trcd(self):
        assert ns_to_cycles(18.0, 1600.0) == 29

    def test_exact_cycle_boundary(self):
        """A duration that is an exact number of cycles must not round up."""
        assert ns_to_cycles(10.0, 1600.0) == 16

    def test_round_trip_upper_bound(self):
        cycles = ns_to_cycles(42.0, 1600.0)
        assert cycles_to_ns(cycles, 1600.0) >= 42.0

    def test_ms_to_cycles(self):
        # 64 ms at 1600 MHz = 102.4 M cycles.
        assert ms_to_cycles(64.0, 1600.0) == 102_400_000

    def test_us_to_cycles(self):
        assert us_to_cycles(7.8125, 1600.0) == 12_500

    @given(st.floats(min_value=0.01, max_value=1e6))
    def test_never_rounds_down(self, time_ns):
        cycles = ns_to_cycles(time_ns, 1600.0)
        assert cycles_to_ns(cycles, 1600.0) >= time_ns - 1e-6

    def test_size_literals(self):
        assert KIB == 1024
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigError,
            errors.TimingViolationError,
            errors.ProtocolError,
            errors.DataIntegrityError,
            errors.CapacityError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_library_errors_are_catchable_separately(self):
        try:
            raise errors.TimingViolationError("late")
        except errors.ProtocolError:   # pragma: no cover
            pytest.fail("sibling exception types must not overlap")
        except errors.TimingViolationError:
            pass
