"""Tests for the typed stats layer (repro.telemetry.stats)."""

import json
import math

import pytest

from repro.errors import ConfigError
from repro.telemetry import (
    Counter,
    EpochSeries,
    Histogram,
    Ratio,
    StatRegistry,
    export_digest,
)


class TestCounter:
    def test_add_and_set(self):
        c = Counter("acts")
        c.add()
        c.add(4)
        assert c.value == 5
        c.set(2)
        assert c.value == 2
        c.reset()
        assert c.value == 0

    def test_rejects_dotted_names(self):
        with pytest.raises(ConfigError):
            Counter("a.b")
        with pytest.raises(ConfigError):
            Counter("")

    def test_export(self):
        c = Counter("acts", "activations")
        c.add(3)
        assert c.export() == {"kind": "counter", "desc": "activations",
                              "value": 3}


class TestRatio:
    def test_none_when_denominator_zero(self):
        r = Ratio("hit_rate", numerator=0, denominator=0)
        assert r.value is None
        assert r.export()["value"] is None

    def test_stat_terms_are_live(self):
        hits, total = Counter("hits"), Counter("total")
        r = Ratio("rate", numerator=hits, denominator=total)
        assert r.value is None
        hits.add(3)
        total.add(4)
        assert r.value == pytest.approx(0.75)

    def test_callable_terms(self):
        r = Ratio("rate", numerator=lambda: 1.0, denominator=lambda: 8.0)
        assert r.value == pytest.approx(0.125)


class TestHistogram:
    def test_exact_count_sum_min_max_mean(self):
        h = Histogram("lat")
        for v in (10, 20, 30, 100):
            h.observe(v)
        assert h.count == 4
        assert h.total == 160
        assert h.min == 10 and h.max == 100
        assert h.mean == pytest.approx(40.0)

    def test_empty_percentiles_are_none(self):
        h = Histogram("lat")
        assert h.mean is None
        assert h.percentile(50) is None
        export = h.export()
        assert export["p50"] is None and export["p99"] is None

    def test_percentiles_ordered_and_bounded(self):
        h = Histogram("lat")
        for v in range(1, 1001):
            h.observe(v)
        p50, p95, p99 = h.percentile(50), h.percentile(95), h.percentile(99)
        assert p50 <= p95 <= p99
        assert h.min <= p50 and p99 <= h.max
        # Log buckets: percentiles land in the right order of magnitude.
        assert 250 < p50 < 760
        assert p95 > 500

    def test_single_value_percentiles_exact(self):
        h = Histogram("lat")
        for _ in range(10):
            h.observe(42)
        assert h.percentile(50) == pytest.approx(42)
        assert h.percentile(99) == pytest.approx(42)

    def test_negative_clamps_to_zero(self):
        h = Histogram("lat")
        h.observe(-5)
        assert h.min == 0 and h.total == 0

    def test_percentile_range_validated(self):
        with pytest.raises(ConfigError):
            Histogram("lat").percentile(101)


class TestEpochSeries:
    def test_non_finite_becomes_gap(self):
        s = EpochSeries("ipc", epoch_cycles=100)
        s.append(1.0)
        s.append(float("nan"))
        s.append(float("inf"))
        s.append(None)
        assert s.samples == [1.0, None, None, None]
        assert len(s) == 4

    def test_export_rounds(self):
        s = EpochSeries("ipc", epoch_cycles=100)
        s.append(1.23456789)
        assert s.export()["samples"] == [1.234568]
        assert s.export()["epoch_cycles"] == 100

    def test_rejects_bad_epoch(self):
        with pytest.raises(ConfigError):
            EpochSeries("ipc", epoch_cycles=0)


class TestRegistry:
    def test_nested_groups_and_paths(self):
        reg = StatRegistry()
        reg.group("controller.ch0").counter("reads").add(7)
        assert reg["controller.ch0.reads"].value == 7
        paths = [p for p, _ in reg.flatten()]
        assert paths == ["controller.ch0.reads"]

    def test_duplicate_names_rejected(self):
        reg = StatRegistry()
        group = reg.group("g")
        group.counter("x")
        with pytest.raises(ConfigError):
            group.counter("x")

    def test_group_stat_name_collision_rejected(self):
        reg = StatRegistry()
        reg.group("g").counter("x")
        with pytest.raises(ConfigError):
            reg.group("g.x")

    def test_export_shape(self):
        reg = StatRegistry()
        g = reg.group("dram")
        g.counter("acts").add(2)
        export = reg.export()
        assert export == {
            "dram": {"acts": {"kind": "counter", "desc": "", "value": 2}}
        }

    def test_reset_recurses(self):
        reg = StatRegistry()
        c = reg.group("a.b").counter("n")
        c.add(9)
        reg.reset()
        assert c.value == 0

    def test_to_json_is_canonical(self):
        reg = StatRegistry()
        reg.group("z").counter("n").add(1)
        reg.group("a").counter("m").add(2)
        text = reg.to_json()
        assert json.loads(text) == reg.export()
        # sort_keys: 'a' serializes before 'z' regardless of creation order
        assert text.index('"a"') < text.index('"z"')

    def test_digest_stable_and_content_sensitive(self):
        def build(n):
            reg = StatRegistry()
            reg.group("g").counter("x").add(n)
            return reg

        assert build(3).digest() == build(3).digest()
        assert build(3).digest() != build(4).digest()

    def test_export_digest_handles_non_finite(self):
        assert export_digest({"v": float("nan")}) == \
            export_digest({"v": None})
        assert isinstance(export_digest({"v": math.pi}), str)
