"""Tests for the command event trace (repro.telemetry.trace)."""

import json

import pytest

from repro.errors import ConfigError
from repro.telemetry import EventTrace


class TestRingBuffer:
    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            EventTrace(0)

    def test_records_in_order(self):
        trace = EventTrace(8)
        for tick in range(3):
            trace.record(tick, "ACT", bank=tick)
        assert len(trace) == 3
        assert trace.dropped == 0
        assert [e[0] for e in trace.events()] == [0, 1, 2]

    def test_wraparound_keeps_newest(self):
        trace = EventTrace(4)
        for tick in range(10):
            trace.record(tick, "ACT")
        assert len(trace) == 4
        assert trace.recorded == 10
        assert trace.dropped == 6
        assert [e[0] for e in trace.events()] == [6, 7, 8, 9]

    def test_reset(self):
        trace = EventTrace(4)
        trace.record(1, "ACT")
        trace.reset()
        assert len(trace) == 0 and trace.dropped == 0
        assert trace.events() == []

    def test_to_dicts_field_names(self):
        trace = EventTrace(4)
        trace.record(5, "RD", bank=2, row="col:7", detail=None)
        (event,) = trace.to_dicts()
        assert event == {"tick": 5, "cmd": "RD", "bank": 2,
                         "row": "col:7", "detail": None}

    def test_export_summary(self):
        trace = EventTrace(2)
        for tick in range(3):
            trace.record(tick, "ACT")
        export = trace.export()
        assert export["capacity"] == 2
        assert export["recorded"] == 3
        assert export["dropped"] == 1
        assert len(export["events"]) == 2


class TestCommandAdapter:
    def test_records_real_commands(self):
        from repro.dram.commands import Command, CommandKind, RowId

        trace = EventTrace(8)
        regular = RowId.regular(300, rows_per_subarray=512)
        copy = RowId.copy(0, 1)
        trace.record_command(
            10, Command(kind=CommandKind.ACT_C, bank=3,
                        rows=(regular, copy))
        )
        (event,) = trace.to_dicts()
        assert event["cmd"] == "ACT_C"
        assert event["bank"] == 3
        assert event["row"] == "s0:r300"
        assert event["detail"] == "pair:s0:c1"


class TestJsonlExport:
    def test_write_jsonl_round_trips(self, tmp_path):
        trace = EventTrace(8)
        trace.record(1, "ACT", bank=0, row="s0:r1")
        trace.record(2, "RD", bank=0, row="col:3")
        path = tmp_path / "trace.jsonl"
        assert trace.write_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line)["tick"] for line in lines] == [1, 2]
