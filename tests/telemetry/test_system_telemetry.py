"""End-to-end telemetry: system wiring, determinism, defined values."""

import json

import pytest

from repro import SystemConfig, run_workload
from repro.controller.controller import ChannelController, ControllerConfig
from repro.dram.device import DramChannel
from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParameters

FAST = dict(instructions=8_000, warmup_instructions=2_000)


def telemetry_run(name="mcf", mechanism="crow-cache", **config_kwargs):
    config_kwargs.setdefault("telemetry", True)
    config_kwargs.setdefault("telemetry_epoch_cycles", 500)
    return run_workload(
        name, SystemConfig(mechanism=mechanism, **config_kwargs), **FAST
    )


class TestWiring:
    def test_disabled_by_default(self):
        result = run_workload("libq", SystemConfig(), **FAST)
        assert result.telemetry is None
        assert result.telemetry_digest() is None

    def test_export_structure(self):
        result = telemetry_run()
        export = result.telemetry
        assert set(export) >= {"controller", "dram", "crow", "llc",
                               "cores", "epochs", "meta"}
        ch0 = export["controller"]["ch0"]
        assert ch0["reads_served"]["value"] > 0
        assert ch0["read_latency"]["count"] > 0
        assert ch0["read_latency"]["p95"] >= ch0["read_latency"]["p50"]
        assert export["meta"]["mechanism"] == "crow-cache"

    def test_epochs_populated(self):
        result = telemetry_run()
        series = result.telemetry["epochs"]["ipc"]
        assert series["epoch_cycles"] == 500
        assert len(series["samples"]) >= 2
        assert any(s is not None and s > 0 for s in series["samples"])

    def test_latency_histogram_agrees_with_controller_sum(self):
        result = telemetry_run()
        ch0 = result.telemetry["controller"]["ch0"]
        hist = ch0["read_latency"]
        avg = ch0["read_latency_avg"]
        # Same events observed through both paths.
        assert hist["count"] == avg["denominator"]
        assert hist["sum"] == avg["numerator"]

    def test_trace_disabled_unless_requested(self):
        result = telemetry_run()
        assert "trace" not in result.telemetry

    def test_trace_capture(self):
        result = telemetry_run(telemetry_trace_capacity=128)
        trace = result.telemetry["trace"]
        assert trace["capacity"] == 128
        assert trace["recorded"] > 0
        assert len(trace["events"]) <= 128
        cmds = {e["cmd"] for e in trace["events"]}
        assert cmds & {"ACT", "ACT_C", "ACT_T", "RD", "WR", "PRE"}

    def test_crow_ref_counters(self):
        result = telemetry_run(mechanism="crow-ref")
        crow = result.telemetry["crow"]
        assert crow["ref_remapped_rows"]["value"] > 0


class TestDeterminism:
    def test_byte_identical_across_runs(self):
        first = telemetry_run(telemetry_trace_capacity=64)
        second = telemetry_run(telemetry_trace_capacity=64)
        a = json.dumps(first.telemetry, sort_keys=True)
        b = json.dumps(second.telemetry, sort_keys=True)
        assert a == b
        assert first.telemetry_digest() == second.telemetry_digest()

    def test_digest_differs_across_seeds(self):
        first = telemetry_run(seed=1)
        second = telemetry_run(seed=2)
        assert first.telemetry_digest() != second.telemetry_digest()

    def test_no_wall_clock_in_export(self):
        export = telemetry_run().telemetry
        # Every timestamp is a simulation tick bounded by the run length.
        meta = export["meta"]
        assert meta["measure_start"] < meta["measure_end"]
        assert meta["cycles"] == meta["measure_end"] - meta["measure_start"]


class TestDefinedEmptyValues:
    """Satellite: Controller metrics must be well-defined with no traffic."""

    def _idle_controller(self):
        geometry = DramGeometry()
        timing = TimingParameters.lpddr4(density_gbit=8)
        channel = DramChannel(geometry, timing)
        return ChannelController(channel, config=ControllerConfig())

    def test_row_hit_rate_defined_without_traffic(self):
        controller = self._idle_controller()
        assert controller.row_hit_rate() == 0.0

    def test_average_read_latency_defined_without_traffic(self):
        controller = self._idle_controller()
        assert controller.average_read_latency == 0.0

    def test_telemetry_ratio_distinguishes_no_traffic(self):
        # The telemetry Ratio reports None (undefined), not 0.0, when the
        # denominator is zero — unlike the float helpers above.
        from repro.telemetry import Ratio

        ratio = Ratio("rate", numerator=0, denominator=0)
        assert ratio.value is None


class TestConfigValidation:
    def test_epoch_cycles_validated(self):
        with pytest.raises(Exception):
            SystemConfig(telemetry_epoch_cycles=0)

    def test_trace_capacity_validated(self):
        with pytest.raises(Exception):
            SystemConfig(telemetry_trace_capacity=-1)

    def test_telemetry_changes_cache_key(self):
        from repro.sim.campaign import config_digest

        off = SystemConfig()
        on = SystemConfig(telemetry=True)
        assert config_digest(off) != config_digest(on)


class TestEstimateNamespace:
    """Opt-in ``estimate.*`` telemetry (estimator arbitration facts)."""

    def test_absent_unless_opted_in(self):
        result = telemetry_run()
        assert "estimate" not in result.telemetry

    def test_opt_out_digest_matches_the_legacy_export(self):
        # `estimate_telemetry=False` must be indistinguishable from a
        # config predating the field: the committed digest oracle
        # (tests/sim/test_determinism.py) stays valid.
        legacy = telemetry_run()
        explicit = telemetry_run(estimate_telemetry=False)
        assert legacy.telemetry_digest() == explicit.telemetry_digest()

    def test_opted_in_export_reports_the_arbitration(self):
        result = telemetry_run(estimate_telemetry=True)
        facts = result.telemetry["estimate"]["channel_energy"]
        assert facts["selected_idd_reference"]["value"] == 1
        assert facts["accuracy_percent"]["value"] == 90.0
        assert facts["capable_backends"]["value"] == 2
        assert facts["coefficients"]["act_nj"]["value"] > 0

    def test_opted_in_digest_is_deterministic(self):
        first = telemetry_run(estimate_telemetry=True)
        second = telemetry_run(estimate_telemetry=True)
        assert first.telemetry_digest() == second.telemetry_digest()
        assert first.telemetry_digest() != telemetry_run().telemetry_digest()
