"""Tests for the core model, virtual memory, and the RPT prefetcher."""

import pytest

from repro.cpu import CoreConfig, RptPrefetcher, VirtualMemory
from repro.cpu.core import Core, TraceRecord
from repro.errors import CapacityError, ConfigError
from repro.units import MIB


class FakePort:
    """Port double: configurable hit/miss/stall behaviour per access."""

    def __init__(self, outcomes=None, latency=4):
        self.outcomes = list(outcomes or [])
        self.latency = latency
        self.pending = []
        self.accesses = []

    def access(self, core_id, vaddr, is_write, pc, now, on_complete):
        outcome = self.outcomes.pop(0) if self.outcomes else "hit"
        self.accesses.append((vaddr, is_write, outcome))
        if outcome == "stall":
            return "stall"
        self.pending.append((now + self.latency, on_complete))
        return outcome

    def deliver(self, now):
        ready = [p for p in self.pending if p[0] <= now]
        self.pending = [p for p in self.pending if p[0] > now]
        for finish, fn in ready:
            fn(finish)


def run_core(trace, port, ticks=4000, config=None):
    core = Core(0, iter(trace), port, config or CoreConfig())
    now = 0
    for _ in range(ticks):
        port.deliver(now)
        wake = core.tick(now)
        if core.done and not port.pending:
            break
        now = max(now + 1, min(wake, now + 16))
    return core, now


class TestCoreConfig:
    def test_slots_per_tick(self):
        assert CoreConfig().slots_per_tick == 10   # 4-wide @ 2.5x clock

    def test_rejects_slow_cpu(self):
        with pytest.raises(ConfigError):
            CoreConfig(cpu_clock_mhz=100.0, mem_clock_mhz=1600.0)


class TestCoreExecution:
    def test_retires_bubbles_at_issue_width(self):
        port = FakePort()
        trace = [TraceRecord(99, 0x1000, False, 0)]
        core, now = run_core(trace, port)
        assert core.retired == 100
        assert core.done

    def test_fast_forward_matches_slow_path(self):
        """A single long bubble run retires in bubbles/slots ticks."""
        port = FakePort()
        trace = [TraceRecord(10_000, 0x1000, False, 0)]
        core, now = run_core(trace, port, ticks=3000)
        assert core.retired == 10_001
        assert now >= 10_000 // CoreConfig().slots_per_tick

    def test_load_blocks_retirement_until_completion(self):
        port = FakePort(outcomes=["miss"], latency=500)
        trace = [TraceRecord(0, 0x1000, False, 0), TraceRecord(50, 0x2000, False, 0)]
        core = Core(0, iter(trace), port)
        now = core.tick(0)
        # The load is outstanding; the window holds it plus later bubbles.
        assert core.retired < 10
        assert core.outstanding == 1

    def test_store_retires_immediately(self):
        port = FakePort(outcomes=["miss"], latency=500)
        trace = [TraceRecord(0, 0x1000, True, 0)]
        core = Core(0, iter(trace), port)
        core.tick(0)
        assert core.retired == 1          # store retired despite miss

    def test_mshr_limit_stalls_issue(self):
        port = FakePort(outcomes=["miss"] * 20, latency=10_000)
        trace = [TraceRecord(0, 0x1000 + i * 64, False, 0) for i in range(20)]
        core = Core(0, iter(trace), port, CoreConfig(mshrs=8))
        for now in range(0, 40, 1):
            core.tick(now)
        assert core.outstanding == 8

    def test_stall_on_port_retries(self):
        port = FakePort(outcomes=["stall", "hit"])
        trace = [TraceRecord(0, 0x1000, False, 0)]
        core = Core(0, iter(trace), port)
        wake = core.tick(0)
        assert wake > 0
        core.tick(wake)
        port.deliver(wake + 10)
        core.tick(wake + 10)
        assert core.retired == 1

    def test_ipc_measurement_window(self):
        port = FakePort()
        trace = [TraceRecord(999, 0x1000, False, 0) for _ in range(40)]
        core = Core(0, iter(trace), port)
        now = 0
        while core.retired < 1000:
            port.deliver(now)
            now = max(now + 1, min(core.tick(now), now + 16))
        core.begin_measurement(now, target_instructions=2000)
        while core.finish_cycle is None:
            port.deliver(now)
            now = max(now + 1, min(core.tick(now), now + 16))
        # Pure bubbles: IPC equals the issue width (4 per CPU cycle).
        assert core.ipc() == pytest.approx(4.0, rel=0.1)


class TestVirtualMemory:
    def test_same_page_same_frame(self):
        vm = VirtualMemory(64 * MIB, seed=1)
        a = vm.translate(0, 0x1000)
        b = vm.translate(0, 0x1FFF)
        assert a // 4096 == b // 4096
        assert b - a == 0xFFF

    def test_different_pages_random_frames(self):
        vm = VirtualMemory(64 * MIB, seed=1)
        frames = {vm.translate(0, i * 4096) // 4096 for i in range(64)}
        assert len(frames) == 64
        # Random placement: not simply consecutive.
        assert frames != set(range(64))

    def test_address_spaces_are_isolated(self):
        vm = VirtualMemory(64 * MIB, seed=1)
        assert vm.translate(0, 0x1000) != vm.translate(1, 0x1000)

    def test_deterministic(self):
        a = VirtualMemory(64 * MIB, seed=9).translate(0, 0x5000)
        b = VirtualMemory(64 * MIB, seed=9).translate(0, 0x5000)
        assert a == b

    def test_exhaustion(self):
        vm = VirtualMemory(8192, seed=1)  # two frames
        vm.translate(0, 0)
        vm.translate(0, 4096)
        with pytest.raises(CapacityError):
            vm.translate(0, 8192)


class TestRptPrefetcher:
    def test_detects_constant_stride(self):
        pf = RptPrefetcher(degree=2)
        assert pf.observe(0x400, 0x1000) == []
        assert pf.observe(0x400, 0x1100) == []      # stride learned
        targets = pf.observe(0x400, 0x1200)          # stride confirmed
        assert targets == [0x1300, 0x1400]

    def test_ignores_irregular_pattern(self):
        pf = RptPrefetcher()
        pf.observe(0x400, 0x1000)
        pf.observe(0x400, 0x1100)
        assert pf.observe(0x400, 0x5000) == []

    def test_streams_tracked_per_pc(self):
        pf = RptPrefetcher()
        pf.observe(0x400, 0x1000)
        pf.observe(0x500, 0x9000)
        pf.observe(0x400, 0x1040)
        pf.observe(0x500, 0x9040)
        assert pf.observe(0x400, 0x1080) != []
        assert pf.observe(0x500, 0x9080) != []

    def test_table_capacity_lru(self):
        pf = RptPrefetcher(entries=2)
        pf.observe(1, 0x1000)
        pf.observe(2, 0x2000)
        pf.observe(3, 0x3000)    # evicts pc=1
        pf.observe(1, 0x1040)    # re-learns from scratch
        assert pf.observe(1, 0x1080) == []   # only transient by now

    def test_zero_stride_never_prefetches(self):
        pf = RptPrefetcher()
        for _ in range(5):
            assert pf.observe(7, 0x4000) == []
