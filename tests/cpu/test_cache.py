"""Tests for the LLC model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import CacheConfig, Llc
from repro.errors import ConfigError
from repro.units import KIB, MIB


def tiny_cache(ways=2, sets=4) -> Llc:
    return Llc(CacheConfig(size_bytes=sets * ways * 64, ways=ways))


class TestConfig:
    def test_table2_defaults(self):
        config = CacheConfig()
        assert config.size_bytes == 8 * MIB
        assert config.ways == 8
        assert config.sets == 16384

    def test_rejects_non_dividing_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000)


class TestAccess:
    def test_cold_miss_then_hit(self):
        llc = tiny_cache()
        hit, wb, _ = llc.access(0x1000, False)
        assert not hit and wb is None
        hit, wb, _ = llc.access(0x1000, False)
        assert hit

    def test_same_line_different_offset_hits(self):
        llc = tiny_cache()
        llc.access(0x1000, False)
        hit, _, _ = llc.access(0x1020, False)
        assert hit

    def test_lru_eviction(self):
        llc = tiny_cache(ways=2, sets=1)
        llc.access(0x0, False)
        llc.access(0x40, False)
        llc.access(0x0, False)       # renew line 0
        llc.access(0x80, False)      # evicts line 0x40
        assert llc.contains(0x0)
        assert not llc.contains(0x40)

    def test_dirty_eviction_returns_writeback(self):
        llc = tiny_cache(ways=1, sets=1)
        llc.access(0x0, True)
        _, writeback, _ = llc.access(0x40, False)
        assert writeback == 0x0

    def test_clean_eviction_no_writeback(self):
        llc = tiny_cache(ways=1, sets=1)
        llc.access(0x0, False)
        _, writeback, _ = llc.access(0x40, False)
        assert writeback is None

    def test_write_marks_dirty_on_hit(self):
        llc = tiny_cache(ways=1, sets=1)
        llc.access(0x0, False)
        llc.access(0x0, True)
        _, writeback, _ = llc.access(0x40, False)
        assert writeback == 0x0

    def test_miss_rate(self):
        llc = tiny_cache()
        llc.access(0x0, False)
        llc.access(0x0, False)
        assert llc.miss_rate() == pytest.approx(0.5)


class TestPrefetch:
    def test_prefetch_fill_then_demand_hit_reports_useful(self):
        llc = tiny_cache()
        llc.fill_prefetch(0x1000)
        hit, _, was_prefetched = llc.access(0x1000, False)
        assert hit and was_prefetched
        # Second touch no longer counts as a prefetch hit.
        _, _, again = llc.access(0x1000, False)
        assert not again

    def test_prefetch_into_present_line_is_noop(self):
        llc = tiny_cache()
        llc.access(0x1000, False)
        assert llc.fill_prefetch(0x1000) is None
        assert llc.prefetch_fills == 0


class TestWritebackConsistency:
    @given(
        addresses=st.lists(
            st.integers(0, 63).map(lambda line: line * 64),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_writeback_addresses_were_written(self, addresses):
        """Property: every writeback address was previously written dirty
        and maps to the same set as the line that evicted it."""
        llc = tiny_cache(ways=2, sets=2)
        written = set()
        for i, address in enumerate(addresses):
            is_write = i % 3 == 0
            _, writeback, _ = llc.access(address, is_write)
            if is_write:
                written.add(address)
            if writeback is not None:
                assert writeback in written
