"""Tests for the RowHammer mitigation and the combined cache+ref mechanism."""

import numpy as np
import pytest

from repro.controller import ChannelController, ControllerConfig, MemRequest, RequestType
from repro.core import CrowCacheRef, EntryOwner, RowHammerMitigation
from repro.dram import (
    AddressMapper,
    CellArray,
    DramChannel,
    DramGeometry,
    RetentionModel,
    TimingParameters,
)
from repro.dram.address import DramAddress
from repro.dram.commands import CommandKind, RowId, RowKind

GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()
MAPPER = AddressMapper(GEO)


def address(row: int, col: int = 0, bank: int = 0) -> int:
    return MAPPER.encode(DramAddress(channel=0, rank=0, bank=bank, row=row, col=col))


def run_requests(controller, rows, serialize=True):
    now = 0
    for row in rows:
        request = MemRequest(
            RequestType.READ, address(row), MAPPER.decode(address(row))
        )
        while not controller.enqueue(request, now):
            now = max(controller.tick(now), now + 1)
        if serialize:
            while controller.pending_requests:
                now = max(controller.tick(now), now + 1)
            for _ in range(400):
                if all(not b.is_open for b in controller.channel.banks):
                    break
                now = max(controller.tick(now), now + 1)
    while controller.pending_requests:
        now = max(controller.tick(now), now + 1)
    # Let urgent plans drain.
    for _ in range(2000):
        wake = controller.tick(now)
        if controller.mechanism.urgent_plan(now) is None:
            break
        now = max(wake, now + 1)
    return now


class TestRowHammerMitigation:
    def _build(self, threshold=20, cells=None):
        channel = DramChannel(GEO, TIMING, cell_array=cells)
        mitigation = RowHammerMitigation(
            GEO, TIMING, hammer_threshold=threshold
        )
        controller = ChannelController(
            channel, mechanism=mitigation, refresh_enabled=False
        )
        return controller, channel, mitigation

    def test_detection_queues_victims(self):
        controller, channel, mitigation = self._build(threshold=5)
        run_requests(controller, [100] * 5)
        assert mitigation.counters[(0, 100)] >= 5
        # Victims 99 and 101 were copied to copy rows.
        assert mitigation.protected_victims == 2
        assert (0, 99) in mitigation.remap
        assert (0, 101) in mitigation.remap

    def test_victim_access_served_from_copy(self):
        controller, channel, mitigation = self._build(threshold=5)
        run_requests(controller, [100] * 5)
        srow = mitigation.service_row(0, 101)
        assert srow.kind is RowKind.COPY

    def test_below_threshold_no_remap(self):
        controller, channel, mitigation = self._build(threshold=50)
        run_requests(controller, [100] * 5)
        assert mitigation.protected_victims == 0

    def test_refresh_resets_counters(self):
        controller, channel, mitigation = self._build(threshold=50)
        run_requests(controller, [100] * 5)
        mitigation.on_refresh(range(96, 104), now=10**6)
        assert (0, 100) not in mitigation.counters

    def test_protects_data_in_functional_model(self):
        """With the mitigation, a hammered aggressor cannot corrupt the
        data a victim row serves (it lives in the copy row)."""
        cells = CellArray(GEO, clock_mhz=TIMING.clock_mhz, hammer_threshold=40)
        controller, channel, mitigation = self._build(threshold=10, cells=cells)
        victim = RowId.regular(101, GEO.rows_per_subarray)
        cells.set_row_data(0, victim, 0x5A5A5A5A)
        run_requests(controller, [100] * 60)
        # Physical victim row may have flipped bits...
        assert cells.disturbance_flips > 0
        # ...but the serving row (the copy) still holds the data.
        srow = mitigation.service_row(0, 101)
        assert srow.kind is RowKind.COPY
        assert np.all(
            cells.row_data(0, srow) == np.uint64(0x5A5A5A5A)
        )


class TestCombinedMechanism:
    def _build(self, weak=2, seed=5):
        retention = RetentionModel(
            GEO, target_interval_ms=128.0, weak_rows_per_subarray=weak, seed=seed
        )
        mechanism = CrowCacheRef(GEO, TIMING, retention)
        channel = DramChannel(GEO, TIMING)
        controller = ChannelController(
            channel, mechanism=mechanism, refresh_enabled=False
        )
        return controller, channel, mechanism, retention

    def test_ref_entries_pinned_cache_uses_rest(self):
        controller, channel, mechanism, retention = self._build(weak=2)
        ref_entries = mechanism.table.allocated_count(EntryOwner.REF)
        assert ref_entries == mechanism.ref.remapped_rows
        weak = retention.weak_regular_rows(0, 0, 0)
        strong = [i for i in range(512) if i not in weak][:3]
        run_requests(controller, strong + strong)
        # Cache entries appeared without evicting REF entries.
        assert mechanism.table.allocated_count(EntryOwner.REF) == ref_entries
        assert mechanism.table.allocated_count(EntryOwner.CACHE) > 0

    def test_remapped_row_activation_is_plain_act(self):
        controller, channel, mechanism, retention = self._build(weak=2)
        weak_index = sorted(retention.weak_regular_rows(0, 0, 0))[0]
        run_requests(controller, [weak_index])
        assert channel.counts[CommandKind.ACT] >= 1
        assert channel.counts[CommandKind.ACT_C] == 0

    def test_strong_row_reuse_hits_cache(self):
        controller, channel, mechanism, retention = self._build(weak=2)
        weak = retention.weak_regular_rows(0, 0, 0)
        strong = next(i for i in range(512) if i not in weak)
        run_requests(controller, [strong, strong, strong])
        assert channel.counts[CommandKind.ACT_T] >= 1
        assert mechanism.cache.hits >= 1

    def test_achieved_window_extends(self):
        _, _, mechanism, _ = self._build(weak=2)
        assert mechanism.achieved_refresh_window_ms == 128.0

    def test_cache_cannot_overflow_into_ref_ways(self):
        controller, channel, mechanism, retention = self._build(
            weak=GEO.copy_rows_per_subarray - 1
        )
        weak = retention.weak_regular_rows(0, 0, 0)
        strong = [i for i in range(512) if i not in weak][:4]
        run_requests(controller, strong * 2)
        # Only one way per subarray is available to the cache.
        for entries in [mechanism.table.entries(0, 0)]:
            cache_owned = [
                e for e in entries
                if e.allocated and e.owner is EntryOwner.CACHE
            ]
            assert len(cache_owned) <= 1
