"""Tests for CROW-ref: profiling, remapping, refresh extension, fallback."""

import pytest

from repro.controller import ChannelController, ControllerConfig, MemRequest, RequestType
from repro.core import CrowRef, EntryOwner
from repro.dram import (
    AddressMapper,
    CellArray,
    DramChannel,
    DramGeometry,
    RetentionModel,
    TimingParameters,
)
from repro.dram.address import DramAddress
from repro.dram.commands import CommandKind, RowKind
from repro.units import ms_to_cycles

# A small geometry keeps profiling fast in unit tests.
GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()
MAPPER = AddressMapper(GEO)


def make_ref(weak=3, seed=5, target=128.0):
    retention = RetentionModel(
        GEO, target_interval_ms=target, weak_rows_per_subarray=weak, seed=seed
    )
    return CrowRef(GEO, TIMING, retention), retention


class TestProfiling:
    def test_all_weak_rows_remapped(self):
        ref, retention = make_ref(weak=3)
        expected = GEO.banks_per_channel * GEO.subarrays_per_bank * 3
        assert ref.remapped_rows == expected
        assert ref.fallback_subarrays == 0

    def test_achieves_extended_window(self):
        ref, _ = make_ref(weak=3)
        assert ref.achieved_refresh_window_ms == 128.0

    def test_fallback_when_too_many_weak_rows(self):
        ref, _ = make_ref(weak=GEO.copy_rows_per_subarray + 1)
        assert ref.fallback_subarrays > 0
        assert ref.achieved_refresh_window_ms == 64.0

    def test_entries_are_pinned_ref_owned(self):
        ref, _ = make_ref(weak=2)
        assert ref.table.allocated_count(EntryOwner.REF) == ref.remapped_rows


class TestServiceRow:
    def test_weak_row_redirects_to_copy(self):
        ref, retention = make_ref(weak=2)
        weak_index = sorted(retention.weak_regular_rows(0, 0, 0))[0]
        srow = ref.service_row(0, weak_index)
        assert srow.kind is RowKind.COPY
        assert srow.subarray == 0

    def test_strong_row_unchanged(self):
        ref, retention = make_ref(weak=2)
        weak = retention.weak_regular_rows(0, 0, 0)
        strong = next(i for i in range(512) if i not in weak)
        srow = ref.service_row(0, strong)
        assert srow.kind is RowKind.REGULAR
        assert srow.index == strong

    def test_plan_uses_plain_act_with_default_timings(self):
        ref, retention = make_ref(weak=2)
        weak_index = sorted(retention.weak_regular_rows(0, 0, 0))[0]
        plan = ref.plan_activation(0, weak_index, now=0)
        assert plan.kind is CommandKind.ACT
        assert plan.timings is None


class TestDynamicRemap:
    def test_request_remap_then_activation_copies(self):
        ref, retention = make_ref(weak=0)
        assert ref.request_remap(0, 100)
        plan = ref.plan_activation(0, 100, now=0)
        assert plan.kind is CommandKind.ACT_C
        # The copy must be fully restored (it will be activated alone).
        assert plan.timings.tras_early == plan.timings.tras_full
        ref.on_activate(0, plan, 0)
        assert ref.service_row(0, 100).kind is RowKind.COPY
        assert not ref.pending_remaps

    def test_remap_fails_when_no_free_way(self):
        ref, _ = make_ref(weak=GEO.copy_rows_per_subarray)
        # Subarray 0 is full of REF-pinned entries.
        assert not ref.request_remap(0, 5)
        assert ref.remap_failures == 1

    def test_remap_idempotent_for_remapped_row(self):
        ref, retention = make_ref(weak=1)
        weak_index = sorted(retention.weak_regular_rows(0, 0, 0))[0]
        assert ref.request_remap(0, weak_index)
        assert not ref.pending_remaps


class TestEndToEndIntegrity:
    def test_weak_row_data_survives_extended_interval(self):
        """The headline CROW-ref property: with remapping, data written to
        a weak row survives a 128 ms refresh window that would otherwise
        lose it (the cell array enforces retention physics)."""
        retention = RetentionModel(
            GEO, target_interval_ms=128.0, weak_rows_per_subarray=3, seed=5
        )
        ref = CrowRef(GEO, TIMING, retention)
        cells = CellArray(
            GEO, clock_mhz=TIMING.clock_mhz, retention=retention
        )
        extended = TIMING.with_refresh_window(ref.achieved_refresh_window_ms)
        channel = DramChannel(GEO, extended, cell_array=cells)
        controller = ChannelController(channel, mechanism=ref,
                                       refresh_enabled=False)
        weak_index = sorted(retention.weak_regular_rows(0, 0, 0))[0]
        # Data lives in the copy row (remap happened at boot profiling).
        srow = ref.service_row(0, weak_index)
        cells.set_row_data(0, srow, 0xABCD, now=0)
        # Access the row just before the extended window expires.
        at_127ms = ms_to_cycles(127.0, TIMING.clock_mhz)
        addr = MAPPER.encode(
            DramAddress(channel=0, rank=0, bank=0, row=weak_index, col=0)
        )
        done = []
        request = MemRequest(
            RequestType.READ, addr, MAPPER.decode(addr),
            callback=lambda r, t: done.append(t),
        )
        controller.enqueue(request, at_127ms)
        now = at_127ms
        while controller.pending_requests:
            now = max(controller.tick(now), now + 1)
        assert done, "read served from the strong copy row without error"

    def test_unremapped_weak_row_would_fail(self):
        """Sanity: without CROW-ref the same access raises."""
        from repro.errors import DataIntegrityError
        from repro.dram.commands import Command, RowId

        retention = RetentionModel(
            GEO, target_interval_ms=128.0, weak_rows_per_subarray=3, seed=5
        )
        cells = CellArray(GEO, clock_mhz=TIMING.clock_mhz, retention=retention)
        weak_index = sorted(retention.weak_regular_rows(0, 0, 0))[0]
        row = RowId.regular(weak_index, GEO.rows_per_subarray)
        cells.set_row_data(0, row, 0xABCD, now=0)
        at_127ms = ms_to_cycles(127.0, TIMING.clock_mhz)
        act = Command(CommandKind.ACT, bank=0, rows=(row,))
        with pytest.raises(DataIntegrityError):
            cells.on_activate(act, at_127ms)
