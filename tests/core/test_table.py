"""Tests for the CROW-table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CrowTable, EntryOwner
from repro.dram import DramGeometry
from repro.errors import CapacityError, ConfigError

GEO = DramGeometry()


class TestLookup:
    def test_empty_table_misses(self):
        table = CrowTable(GEO)
        assert table.lookup(0, 0, 5) is None

    def test_allocate_then_hit(self):
        table = CrowTable(GEO)
        entry = table.allocate(0, 3, 17, EntryOwner.CACHE, now=10)
        found = table.lookup(0, 3, 17)
        assert found is entry
        assert found.way == entry.way

    def test_lookup_is_per_bank_and_subarray(self):
        table = CrowTable(GEO)
        table.allocate(0, 3, 17, EntryOwner.CACHE, now=10)
        assert table.lookup(1, 3, 17) is None
        assert table.lookup(0, 4, 17) is None

    def test_ways_match_copy_rows(self):
        table = CrowTable(GEO)
        assert len(table.entries(0, 0)) == GEO.copy_rows_per_subarray


class TestAllocation:
    def test_set_fills_up(self):
        table = CrowTable(GEO)
        for i in range(GEO.copy_rows_per_subarray):
            table.allocate(0, 0, i, EntryOwner.CACHE, now=i)
        assert table.free_entry(0, 0) is None
        with pytest.raises(CapacityError):
            table.allocate(0, 0, 99, EntryOwner.CACHE, now=99)

    def test_explicit_victim_reallocates(self):
        table = CrowTable(GEO)
        victim = table.allocate(0, 0, 1, EntryOwner.CACHE, now=0)
        table.allocate(0, 0, 2, EntryOwner.CACHE, now=1, entry=victim)
        assert table.lookup(0, 0, 1) is None
        assert table.lookup(0, 0, 2) is victim

    def test_lru_selection(self):
        table = CrowTable(GEO)
        first = table.allocate(0, 0, 1, EntryOwner.CACHE, now=5)
        table.allocate(0, 0, 2, EntryOwner.CACHE, now=9)
        assert table.lru_entry(0, 0, EntryOwner.CACHE) is first

    def test_lru_ignores_other_owners(self):
        table = CrowTable(GEO)
        table.allocate(0, 0, 1, EntryOwner.REF, now=0)
        cache_entry = table.allocate(0, 0, 2, EntryOwner.CACHE, now=9)
        assert table.lru_entry(0, 0, EntryOwner.CACHE) is cache_entry

    def test_unusable_way_never_free(self):
        table = CrowTable(GEO)
        table.mark_unusable(0, 0, 0)
        free = table.free_entry(0, 0)
        assert free is not None and free.way != 0

    def test_allocated_count_by_owner(self):
        table = CrowTable(GEO)
        table.allocate(0, 0, 1, EntryOwner.REF, now=0)
        table.allocate(0, 1, 2, EntryOwner.CACHE, now=0)
        assert table.allocated_count() == 2
        assert table.allocated_count(EntryOwner.REF) == 1


class TestGroupSharing:
    def test_shared_set_spans_subarrays(self):
        table = CrowTable(GEO, subarray_group_size=4)
        assert table.entries(0, 0) is table.entries(0, 3)
        assert table.entries(0, 0) is not table.entries(0, 4)

    def test_sharing_reduces_storage(self):
        dedicated = CrowTable(GEO).storage_bits()
        shared = CrowTable(GEO, subarray_group_size=4).storage_bits()
        assert shared * 4 == dedicated

    def test_shared_entry_tracks_owning_subarray(self):
        table = CrowTable(GEO, subarray_group_size=4)
        table.allocate(0, 2, 17, EntryOwner.CACHE, now=0)
        assert table.lookup(0, 2, 17) is not None
        assert table.lookup(0, 1, 17) is None  # same group, other subarray

    def test_rejects_non_dividing_group(self):
        with pytest.raises(ConfigError):
            CrowTable(GEO, subarray_group_size=3)


class TestStorage:
    def test_paper_configuration_storage(self):
        """Section 6.1: 512 rows, 8 copy rows, 1024 subarrays -> ~11 KiB."""
        table = CrowTable(DramGeometry(channels=1))
        kib = table.storage_bits() / 8 / 1024
        assert kib == pytest.approx(11.0, abs=0.35)


class TestEntryLifecycle:
    @given(
        rows=st.lists(st.integers(0, 511), min_size=1, max_size=40, unique=True)
    )
    @settings(max_examples=25, deadline=None)
    def test_lru_allocation_keeps_most_recent(self, rows):
        """Property: after allocating with LRU replacement, the entries
        present are exactly the most recently used distinct rows."""
        table = CrowTable(GEO)
        ways = GEO.copy_rows_per_subarray
        for now, row in enumerate(rows):
            existing = table.lookup(0, 0, row)
            if existing is not None:
                existing.last_use = now
                continue
            entry = table.free_entry(0, 0)
            if entry is None:
                entry = table.lru_entry(0, 0, EntryOwner.CACHE)
            table.allocate(0, 0, row, EntryOwner.CACHE, now, entry)
        expected = []
        for row in reversed(rows):
            if row not in expected:
                expected.append(row)
            if len(expected) == ways:
                break
        for row in expected:
            assert table.lookup(0, 0, row) is not None
