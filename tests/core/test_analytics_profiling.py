"""Tests for the Eq. 1-4 analytics and the retention profiler."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    RetentionProfiler,
    crow_table_entry_bits,
    crow_table_storage_bits,
    crow_table_storage_kib,
    p_subarray_exceeds,
    p_weak_row,
)
from repro.dram import DramGeometry, RetentionModel
from repro.errors import ConfigError

#: The paper's Section 4.2.1 worked example.
BER = 4e-9
CELLS_PER_ROW = 8 * 1024 * 8  # 8 KiB rows


class TestEq1WeakRowProbability:
    def test_paper_example(self):
        """BER 4e-9 over a 64-Kbit row -> P_weak_row ~ 2.6e-4."""
        p = p_weak_row(BER, CELLS_PER_ROW)
        assert p == pytest.approx(1 - (1 - BER) ** CELLS_PER_ROW)
        assert 1e-4 < p < 1e-3

    def test_zero_ber(self):
        assert p_weak_row(0.0, CELLS_PER_ROW) == 0.0

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigError):
            p_weak_row(1.5, 100)

    @given(st.floats(min_value=0.0, max_value=1e-6))
    def test_monotonic_in_ber(self, ber):
        assert p_weak_row(ber + 1e-7, CELLS_PER_ROW) >= p_weak_row(
            ber, CELLS_PER_ROW
        )


class TestEq2SubarrayProbability:
    def test_paper_values(self):
        """Section 4.2.1: P(subarray has more than 1/2/4/8 weak rows)
        = 0.99 / 3.1e-1 / 3.3e-4 / 3.3e-11.

        (The paper's n=1 value of 0.99 is the probability that *any* of
        the chip's 1024 subarrays exceeds one weak row; per-subarray
        values are tiny, so we verify via the chip-level aggregation.)"""
        p_row = p_weak_row(BER, CELLS_PER_ROW)
        subarrays = 1024
        chip = [
            1.0 - (1.0 - p_subarray_exceeds(n, 512, p_row)) ** subarrays
            for n in (1, 2, 4, 8)
        ]
        assert chip[0] == pytest.approx(0.99, abs=0.3)
        assert chip[1] == pytest.approx(3.1e-1, rel=0.5)
        assert chip[2] == pytest.approx(3.3e-4, rel=0.6)
        assert chip[3] == pytest.approx(3.3e-11, rel=0.9)

    def test_monotonically_decreasing_in_n(self):
        p_row = p_weak_row(BER, CELLS_PER_ROW)
        values = [p_subarray_exceeds(n, 512, p_row) for n in range(9)]
        assert values == sorted(values, reverse=True)

    def test_n_zero_is_any_weak_row(self):
        p_row = 0.01
        expected = 1.0 - (1.0 - p_row) ** 512
        assert p_subarray_exceeds(0, 512, p_row) == pytest.approx(expected)

    def test_rejects_negative_n(self):
        with pytest.raises(ConfigError):
            p_subarray_exceeds(-1, 512, 0.1)


class TestEq34TableStorage:
    def test_entry_bits_paper_config(self):
        """512 regular rows -> 9-bit pointer + special + allocated = 11."""
        assert crow_table_entry_bits(512, special_bits=1) == 11

    def test_storage_bits_paper_config(self):
        assert crow_table_storage_bits(512, 8, 1024) == 11 * 8 * 1024

    def test_storage_kib_close_to_paper(self):
        """Paper: ~11.3 KB (decimal) = 11.0 KiB for one channel."""
        assert crow_table_storage_kib() == pytest.approx(11.0, abs=0.01)

    def test_more_special_bits_grow_entry(self):
        assert crow_table_entry_bits(512, 2) == 12

    def test_rejects_tiny_subarray(self):
        with pytest.raises(ConfigError):
            crow_table_entry_bits(1)


class TestRetentionProfiler:
    GEO = DramGeometry(rows_per_bank=4096, channels=1)

    def test_boot_profile_finds_planted_rows(self):
        retention = RetentionModel(
            self.GEO, weak_rows_per_subarray=2, seed=3
        )
        profiler = RetentionProfiler(self.GEO, retention)
        profile = profiler.boot_profile()
        total = sum(len(v) for v in profile.values())
        assert total == self.GEO.banks_per_channel * self.GEO.subarrays_per_bank * 2

    def test_periodic_profile_discovers_vrt(self):
        retention = RetentionModel(self.GEO, weak_rows_per_subarray=0)
        profiler = RetentionProfiler(
            self.GEO, retention, vrt_rate_per_pass=3.0, seed=1
        )
        found = []
        for _ in range(10):
            found.extend(profiler.periodic_profile())
        assert found
        assert profiler.known_vrt_rows == frozenset(found)

    def test_zero_vrt_rate_finds_nothing(self):
        retention = RetentionModel(self.GEO, weak_rows_per_subarray=0)
        profiler = RetentionProfiler(self.GEO, retention, vrt_rate_per_pass=0.0)
        assert profiler.periodic_profile() == []

    def test_rejects_negative_rate(self):
        retention = RetentionModel(self.GEO)
        with pytest.raises(ConfigError):
            RetentionProfiler(self.GEO, retention, vrt_rate_per_pass=-1.0)
