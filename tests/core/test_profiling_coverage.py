"""Tests for profiling-coverage arithmetic, temperature-scaled retention,
and the DDR4 timing preset."""

import pytest
from hypothesis import given, strategies as st

from repro.core.profiling import profiling_coverage, recommended_rounds
from repro.dram.retention import bit_error_rate
from repro.dram.timing import TimingParameters
from repro.errors import ConfigError


class TestProfilingCoverage:
    def test_zero_rounds_cover_nothing(self):
        assert profiling_coverage(0) == 0.0

    def test_coverage_grows_with_rounds(self):
        values = [profiling_coverage(n) for n in range(6)]
        assert values == sorted(values)
        assert values[-1] > 0.99

    def test_recommended_rounds_meets_target(self):
        rounds = recommended_rounds(target_coverage=0.999)
        assert profiling_coverage(rounds) >= 0.999

    def test_recommended_rounds_is_minimal(self):
        rounds = recommended_rounds(target_coverage=0.999)
        assert profiling_coverage(rounds - 1) < 0.999

    @given(
        target=st.floats(min_value=0.5, max_value=0.999999),
        per_round=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_rounds_always_sufficient(self, target, per_round):
        rounds = recommended_rounds(target, per_round)
        assert profiling_coverage(rounds, per_round) >= target - 1e-12

    def test_validation(self):
        with pytest.raises(ConfigError):
            profiling_coverage(-1)
        with pytest.raises(ConfigError):
            recommended_rounds(target_coverage=1.0)


class TestTemperatureScaledRetention:
    def test_anchor_temperature_unchanged(self):
        assert bit_error_rate(256.0, temperature_c=85.0) == pytest.approx(
            4e-9
        )

    def test_cooler_chip_fails_less(self):
        assert bit_error_rate(256.0, temperature_c=55.0) < bit_error_rate(
            256.0, temperature_c=85.0
        )

    def test_ten_degrees_equals_interval_doubling(self):
        """Retention halves per +10 C: +10 C at interval T equals the
        anchor temperature at interval 2T."""
        hot = bit_error_rate(128.0, temperature_c=95.0)
        doubled = bit_error_rate(256.0, temperature_c=85.0)
        assert hot == pytest.approx(doubled, rel=1e-9)

    def test_monotone_in_temperature(self):
        values = [
            bit_error_rate(128.0, temperature_c=t) for t in (45, 55, 65, 75, 85)
        ]
        assert values == sorted(values)


class TestDdr4Preset:
    def test_distinct_from_lpddr4(self):
        ddr4 = TimingParameters.ddr4()
        lp = TimingParameters.lpddr4()
        assert ddr4.clock_mhz != lp.clock_mhz
        assert ddr4.tbl == 4     # BL8 on a x64 channel

    def test_sixty_four_ms_window(self):
        ddr4 = TimingParameters.ddr4()
        assert ddr4.refresh_window_ms == 64.0
        assert ddr4.trefi == pytest.approx(
            64e-3 * ddr4.clock_mhz * 1e6 / 8192, rel=0.01
        )

    def test_crow_timings_derive_on_ddr4(self):
        from repro.dram import CrowTimings

        ddr4 = TimingParameters.ddr4()
        crow = CrowTimings.from_factors(ddr4)
        assert crow.trcd_act_t_full < ddr4.trcd
        assert crow.tras_act_c_full > ddr4.tras

    def test_unknown_density_rejected(self):
        with pytest.raises(ConfigError):
            TimingParameters.ddr4(density_gbit=128)
