"""End-to-end test of VRT discovery driving dynamic CROW-ref remapping
(paper Section 4.2.3: periodic profiling + runtime remap)."""

import pytest

from repro.controller import ChannelController, MemRequest, RequestType
from repro.core import CrowRef, RetentionProfiler
from repro.dram import (
    AddressMapper,
    DramChannel,
    DramGeometry,
    RetentionModel,
    TimingParameters,
)
from repro.dram.address import DramAddress
from repro.dram.commands import CommandKind, RowKind

GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()
MAPPER = AddressMapper(GEO)


def drain(controller, now=0):
    while controller.pending_requests:
        now = max(controller.tick(now), now + 1)
    return now


class TestVrtFlow:
    def _build(self):
        retention = RetentionModel(
            GEO, target_interval_ms=128.0, weak_rows_per_subarray=0
        )
        ref = CrowRef(GEO, TIMING, retention)
        profiler = RetentionProfiler(
            GEO, retention, vrt_rate_per_pass=2.0, seed=3
        )
        channel = DramChannel(GEO, TIMING)
        controller = ChannelController(channel, mechanism=ref,
                                       refresh_enabled=False)
        return ref, profiler, channel, controller

    def test_discovered_rows_get_remapped_on_next_activation(self):
        ref, profiler, channel, controller = self._build()
        discoveries = []
        for _ in range(5):
            discoveries.extend(profiler.periodic_profile())
        assert discoveries, "profiler should find VRT rows"
        accepted = [
            (bank, row) for bank, row in discoveries
            if ref.request_remap(bank, row)
        ]
        assert accepted
        now = 0
        for bank, row in accepted:
            addr = MAPPER.encode(
                DramAddress(channel=0, rank=0, bank=bank, row=row, col=0)
            )
            controller.enqueue(
                MemRequest(RequestType.READ, addr, MAPPER.decode(addr)), now
            )
            now = drain(controller, now)
        # Every accepted discovery is now served from a copy row.
        for bank, row in accepted:
            assert ref.service_row(bank, row).kind is RowKind.COPY
        # The remap used ACT-c commands.
        assert channel.counts[CommandKind.ACT_C] == len(accepted)

    def test_remap_activation_fully_restores_copy(self):
        """The dynamically-remapped copy row must be usable alone, so the
        ACT-c must honor the full tRAS before precharge."""
        ref, profiler, channel, controller = self._build()
        ref.request_remap(0, 7)
        addr = MAPPER.encode(
            DramAddress(channel=0, rank=0, bank=0, row=7, col=0)
        )
        controller.enqueue(
            MemRequest(RequestType.READ, addr, MAPPER.decode(addr)), 0
        )
        now = drain(controller)
        # Force the row closed; the PRE must have waited the full tRAS.
        for _ in range(600):
            if not channel.banks[0].is_open:
                break
            now = max(controller.tick(now), now + 1)
        entry = ref.table.lookup(0, 0, 7)
        assert entry is not None
        assert entry.is_fully_restored

    def test_second_activation_uses_copy_alone(self):
        ref, profiler, channel, controller = self._build()
        ref.request_remap(0, 7)
        addr = MAPPER.encode(
            DramAddress(channel=0, rank=0, bank=0, row=7, col=0)
        )
        controller.enqueue(
            MemRequest(RequestType.READ, addr, MAPPER.decode(addr)), 0
        )
        now = drain(controller)
        for _ in range(600):
            if not channel.banks[0].is_open:
                break
            now = max(controller.tick(now), now + 1)
        controller.enqueue(
            MemRequest(RequestType.READ, addr, MAPPER.decode(addr)), now
        )
        drain(controller, now)
        assert channel.counts[CommandKind.ACT_C] == 1
        assert channel.counts[CommandKind.ACT] == 1   # plain ACT of the copy
