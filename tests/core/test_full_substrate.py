"""Tests for the full substrate: cache + ref + RowHammer simultaneously.

Exercises the paper's flexibility claim (Section 1): one copy-row pool and
one CROW-table host all three mechanisms at once, distinguished by the
entry owner tag.
"""

import pytest

from repro import SystemConfig, run_workload
from repro.controller import ChannelController, MemRequest, RequestType
from repro.core import CrowFullSubstrate, EntryOwner
from repro.dram import (
    AddressMapper,
    DramChannel,
    DramGeometry,
    RetentionModel,
    TimingParameters,
)
from repro.dram.address import DramAddress
from repro.dram.commands import CommandKind, RowKind

GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()
MAPPER = AddressMapper(GEO)


def build(weak=1, hammer_threshold=10):
    retention = RetentionModel(
        GEO, target_interval_ms=128.0, weak_rows_per_subarray=weak, seed=5
    )
    mechanism = CrowFullSubstrate(
        GEO, TIMING, retention, hammer_threshold=hammer_threshold
    )
    channel = DramChannel(GEO, TIMING)
    controller = ChannelController(channel, mechanism=mechanism,
                                   refresh_enabled=False)
    return mechanism, retention, channel, controller


def request_row(controller, row, now=0, bank=0):
    addr = MAPPER.encode(
        DramAddress(channel=0, rank=0, bank=bank, row=row, col=0)
    )
    controller.enqueue(
        MemRequest(RequestType.READ, addr, MAPPER.decode(addr)), now
    )
    while controller.pending_requests:
        now = max(controller.tick(now), now + 1)
    for _ in range(400):
        if not controller.channel.banks[bank].is_open:
            break
        now = max(controller.tick(now), now + 1)
    return now


class TestThreeMechanismsCoexist:
    def test_ref_remap_and_cache_hits_together(self):
        mechanism, retention, channel, controller = build(weak=1)
        weak_index = sorted(retention.weak_regular_rows(0, 0, 0))[0]
        strong = next(i for i in range(512)
                      if i not in retention.weak_regular_rows(0, 0, 0))
        now = request_row(controller, weak_index)
        now = request_row(controller, strong, now)
        now = request_row(controller, strong, now)
        # Weak row served from its pinned ref copy, strong row cache-hit.
        assert mechanism.service_row(0, weak_index).kind is RowKind.COPY
        assert channel.counts[CommandKind.ACT_T] >= 1
        assert mechanism.cache.hits >= 1
        assert mechanism.achieved_refresh_window_ms == 128.0

    def test_hammer_detection_on_top(self):
        mechanism, retention, channel, controller = build(
            weak=1, hammer_threshold=6
        )
        weak = retention.weak_regular_rows(0, 0, 0)
        aggressor = next(
            i for i in range(100, 512)
            if i not in weak and (i - 1) not in weak and (i + 1) not in weak
        )
        now = 0
        for _ in range(8):
            now = request_row(controller, aggressor, now)
        assert mechanism.hammer.protected_victims == 2
        assert mechanism.service_row(0, aggressor + 1).kind is RowKind.COPY

    def test_owner_tags_stay_disjoint(self):
        mechanism, retention, channel, controller = build(
            weak=1, hammer_threshold=6
        )
        weak = retention.weak_regular_rows(0, 0, 0)
        aggressor = next(
            i for i in range(100, 512)
            if i not in weak and (i - 1) not in weak and (i + 1) not in weak
        )
        now = 0
        for _ in range(8):
            now = request_row(controller, aggressor, now)
        ref_count = mechanism.table.allocated_count(EntryOwner.REF)
        hammer_count = mechanism.table.allocated_count(EntryOwner.HAMMER)
        cache_count = mechanism.table.allocated_count(EntryOwner.CACHE)
        assert ref_count == mechanism.ref.remapped_rows
        assert hammer_count == mechanism.hammer.protected_victims
        assert cache_count >= 1      # the aggressor itself got cached
        total = mechanism.table.allocated_count()
        assert total == ref_count + hammer_count + cache_count

    def test_victim_copies_never_evicted_by_cache(self):
        mechanism, retention, channel, controller = build(
            weak=0, hammer_threshold=6
        )
        now = 0
        for _ in range(8):
            now = request_row(controller, 100, now)
        assert mechanism.hammer.protected_victims == 2
        # Thrash the subarray with cache traffic.
        for row in range(0, 40):
            now = request_row(controller, row, now)
        assert mechanism.service_row(0, 99).kind is RowKind.COPY
        assert mechanism.service_row(0, 101).kind is RowKind.COPY
        assert mechanism.table.allocated_count(EntryOwner.HAMMER) == 2


class TestFullSubstrateSystem:
    def test_runs_through_the_full_stack(self):
        result = run_workload(
            "h264-dec",
            SystemConfig(mechanism="crow-full"),
            instructions=8_000,
            warmup_instructions=3_000,
        )
        assert result.ipc > 0
        assert result.refresh_window_ms == 128.0
        assert result.crow_hit_rate is not None

    def test_close_to_combined_when_no_attack(self):
        full = run_workload(
            "h264-dec", SystemConfig(mechanism="crow-full"),
            instructions=8_000, warmup_instructions=3_000,
        )
        combined = run_workload(
            "h264-dec", SystemConfig(mechanism="crow-combined"),
            instructions=8_000, warmup_instructions=3_000,
        )
        assert full.ipc == pytest.approx(combined.ipc, rel=0.02)
