"""Tests for CROW-cache: planning, bookkeeping, and the data-integrity
invariant under a real controller command stream."""

import pytest

from repro.controller import ChannelController, ControllerConfig, MemRequest, RequestType
from repro.core import CrowCache, CrowTable, EntryOwner
from repro.dram import (
    AddressMapper,
    CellArray,
    CrowTimings,
    DramChannel,
    DramGeometry,
    TimingParameters,
)
from repro.dram.address import DramAddress
from repro.dram.commands import CommandKind

GEO = DramGeometry()
TIMING = TimingParameters.lpddr4()
CROW = CrowTimings.from_factors(TIMING)
MAPPER = AddressMapper(GEO)


def make_cache(**kwargs) -> CrowCache:
    return CrowCache(GEO, TIMING, crow=CROW, **kwargs)


def address(row: int, col: int = 0, bank: int = 0) -> int:
    return MAPPER.encode(DramAddress(channel=0, rank=0, bank=bank, row=row, col=col))


class TestPlanning:
    def test_first_activation_is_copy(self):
        cache = make_cache()
        plan = cache.plan_activation(0, 100, now=0)
        assert plan.kind is CommandKind.ACT_C

    def test_plan_is_side_effect_free(self):
        cache = make_cache()
        cache.plan_activation(0, 100, now=0)
        cache.plan_activation(0, 100, now=0)
        assert cache.misses == 0
        assert cache.table.allocated_count() == 0

    def test_hit_after_copy(self):
        cache = make_cache()
        plan = cache.plan_activation(0, 100, now=0)
        cache.on_activate(0, plan, 0)
        hit = cache.plan_activation(0, 100, now=10)
        assert hit.kind is CommandKind.ACT_T
        assert cache.misses == 1

    def test_hit_timings_depend_on_restoration(self):
        cache = make_cache()
        plan = cache.plan_activation(0, 100, now=0)
        cache.on_activate(0, plan, 0)
        entry = cache.table.lookup(0, 0, 100)
        entry.is_fully_restored = True
        fast = cache.plan_activation(0, 100, now=10)
        assert fast.timings.trcd == CROW.trcd_act_t_full
        entry.is_fully_restored = False
        slow = cache.plan_activation(0, 100, now=10)
        assert slow.timings.trcd == CROW.trcd_act_t_partial

    def test_partial_victim_forces_restore_plan(self):
        cache = make_cache(evict_partial="restore")
        # Fill every way of subarray 0 with partially-restored rows.
        for i in range(GEO.copy_rows_per_subarray):
            plan = cache.plan_activation(0, i, now=i)
            cache.on_activate(0, plan, i)   # allocate() marks not restored
        plan = cache.plan_activation(0, 100, now=99)
        assert plan.kind is CommandKind.ACT_T
        assert plan.is_restore
        # The restore plan honours the full tRAS.
        assert plan.timings.tras_early == plan.timings.tras_full

    def test_partial_victims_bypass_by_default(self):
        cache = make_cache()
        for i in range(GEO.copy_rows_per_subarray):
            plan = cache.plan_activation(0, i, now=i)
            cache.on_activate(0, plan, i)
        plan = cache.plan_activation(0, 100, now=99)
        assert plan.kind is CommandKind.ACT
        assert not plan.is_restore

    def test_fully_restored_victim_preferred_over_lru(self):
        cache = make_cache()
        for i in range(GEO.copy_rows_per_subarray):
            plan = cache.plan_activation(0, i, now=i)
            cache.on_activate(0, plan, i)
        # Make the *most recently used* entry the only restored one.
        newest = cache.table.lookup(0, 0, GEO.copy_rows_per_subarray - 1)
        newest.is_fully_restored = True
        plan = cache.plan_activation(0, 100, now=99)
        assert plan.kind is CommandKind.ACT_C
        assert plan.rows[1].index == newest.way

    def test_rejects_unknown_evict_policy(self):
        import pytest as _pytest
        from repro.errors import ConfigError

        with _pytest.raises(ConfigError):
            make_cache(evict_partial="magic")

    def test_clean_victim_is_evicted_directly(self):
        cache = make_cache()
        for i in range(GEO.copy_rows_per_subarray):
            plan = cache.plan_activation(0, i, now=i)
            cache.on_activate(0, plan, i)
            entry = cache.table.lookup(0, 0, i)
            entry.is_fully_restored = True
        plan = cache.plan_activation(0, 100, now=99)
        assert plan.kind is CommandKind.ACT_C
        cache.on_activate(0, plan, 99)
        assert cache.evictions == 1
        assert cache.table.lookup(0, 0, 0) is None  # LRU row evicted

    def test_no_cache_ways_falls_back_to_plain_act(self):
        table = CrowTable(GEO)
        for way in range(GEO.copy_rows_per_subarray):
            table.mark_unusable(0, 0, way)
        cache = CrowCache(GEO, TIMING, crow=CROW, table=table)
        plan = cache.plan_activation(0, 100, now=0)
        assert plan.kind is CommandKind.ACT
        cache.on_activate(0, plan, 0)
        assert cache.uncached == 1

    def test_partial_restore_disabled_uses_full_tras(self):
        cache = CrowCache(GEO, TIMING, crow=CROW, allow_partial_restore=False)
        plan = cache.plan_activation(0, 100, now=0)
        assert plan.timings.tras_early == plan.timings.tras_full


class TestHitRate:
    def test_hit_rate_counts_demand_activations(self):
        cache = make_cache()
        for now, row in enumerate([1, 1, 1, 2]):
            plan = cache.plan_activation(0, row, now)
            cache.on_activate(0, plan, now)
        assert cache.hits == 2
        assert cache.misses == 2
        assert cache.hit_rate() == pytest.approx(0.5)


class TestControllerIntegration:
    def _build(self, rows, cells=False, timeout=75.0, serialize=False,
               evict_partial="bypass"):
        cell_array = (
            CellArray(GEO, clock_mhz=TIMING.clock_mhz) if cells else None
        )
        channel = DramChannel(GEO, TIMING, cell_array=cell_array)
        cache = CrowCache(GEO, TIMING, crow=CROW, evict_partial=evict_partial)
        controller = ChannelController(
            channel,
            mechanism=cache,
            config=ControllerConfig(row_timeout_ns=timeout),
            refresh_enabled=False,
        )
        now = 0

        def drain():
            nonlocal now
            limit = now + 10_000_000
            while controller.pending_requests and now < limit:
                now = max(controller.tick(now), now + 1)
            assert controller.pending_requests == 0

        def idle_until_closed():
            nonlocal now
            for _ in range(1000):
                if all(not bank.is_open for bank in channel.banks):
                    return
                now = max(controller.tick(now), now + 1)

        for row in rows:
            request = MemRequest(
                RequestType.READ, address(row), MAPPER.decode(address(row))
            )
            while not controller.enqueue(request, now):
                now = max(controller.tick(now), now + 1)
            if serialize:
                drain()
                idle_until_closed()
        drain()
        return controller, channel, cache, cell_array

    def test_reuse_pattern_hits_crow_table(self):
        rows = [1, 2, 1, 2, 1, 2]
        controller, channel, cache, _ = self._build(rows, serialize=True)
        assert channel.counts[CommandKind.ACT_T] >= 2
        assert cache.hit_rate() > 0.4

    def test_integrity_with_cell_array_random_rows(self):
        """Heavy eviction pressure with the functional layer attached:
        the safe-eviction protocol must prevent any DataIntegrityError."""
        import random

        random.seed(7)
        # Rows confined to one subarray to maximize eviction pressure.
        # Burst mode: back-to-back conflicts force early precharges, so
        # pairs become partially restored and evictions need restores.
        # The 'restore' policy exercises the Section 4.1.4 protocol.
        rows = [random.randrange(0, 24) for _ in range(120)]
        controller, channel, cache, cells = self._build(
            rows, cells=True, evict_partial="restore"
        )
        assert cache.restores > 0, "test should exercise the restore path"
        assert channel.counts[CommandKind.ACT_T] > 0

    def test_restore_fraction_is_small_for_low_pressure(self):
        rows = [i % 4 for i in range(100)]
        controller, channel, cache, _ = self._build(rows, serialize=True)
        assert cache.restore_fraction() < 0.1


class TestRefreshInteraction:
    def test_refresh_marks_entries_restored(self):
        cache = make_cache()
        plan = cache.plan_activation(0, 100, now=0)
        cache.on_activate(0, plan, 0)
        entry = cache.table.lookup(0, 0, 100)
        entry.is_fully_restored = False
        cache.on_refresh(range(96, 104), now=50)
        assert entry.is_fully_restored

    def test_refresh_of_other_rows_leaves_entry(self):
        cache = make_cache()
        plan = cache.plan_activation(0, 100, now=0)
        cache.on_activate(0, plan, 0)
        entry = cache.table.lookup(0, 0, 100)
        entry.is_fully_restored = False
        cache.on_refresh(range(0, 8), now=50)
        assert not entry.is_fully_restored
