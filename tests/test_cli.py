"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quake3"])

    def test_rejects_unknown_mechanism(self, capsys):
        # Names are validated against the plugin registry at config
        # construction, not by argparse: exit 2, error lists the registry.
        code = main(
            ["run", "libq", "--mechanism", "magic",
             "--instructions", "1000", "--warmup", "100"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown mechanism 'magic'" in err
        assert "crow-cache" in err and "hira" in err

    def test_perf_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.output == "BENCH_perf.json"
        assert args.repeat == 2
        assert args.compare is None
        assert args.threshold == 0.15

    def test_perf_compare_options(self):
        args = build_parser().parse_args(
            ["perf", "--compare", "base.json", "--repeat", "3",
             "--threshold", "0.2", "--output", "out.json"]
        )
        assert args.compare == "base.json"
        assert args.repeat == 3
        assert args.threshold == 0.2
        assert args.output == "out.json"


class TestCommands:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "libq" in out and "h264-dec" in out and "mcf" in out

    def test_timings(self, capsys):
        assert main(["timings", "--density", "64"]) == 0
        out = capsys.readouterr().out
        assert "TRCD" in out and "ACT-t" in out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "chip area overhead" in out
        assert "0.48%" in out

    def test_run_with_baseline(self, capsys):
        code = main([
            "run", "h264-dec", "--mechanism", "crow-cache",
            "--instructions", "5000", "--warmup", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup vs baseline" in out
        assert "CROW-table hit rate" in out

    def test_run_mix(self, capsys):
        code = main([
            "run", "libq", "bzip2", "--mechanism", "baseline",
            "--instructions", "2000", "--warmup", "500",
        ])
        assert code == 0
        assert "IPC (sum)" in capsys.readouterr().out


class TestStatsCommand:
    def test_headline_and_figure(self, capsys):
        code = main([
            "stats", "mcf", "--instructions", "5000", "--warmup", "1000",
            "--epoch", "500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "row-buffer hit rate" in out
        assert "read latency p50" in out
        assert "read latency p95" in out
        assert "CROW hit rate" in out
        assert "ipc per epoch" in out
        assert "#" in out  # the ASCII figure rendered

    def test_json_and_trace_export(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "telemetry.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main([
            "stats", "mcf", "--instructions", "5000", "--warmup", "1000",
            "--epoch", "500", "--json", str(json_path),
            "--trace", str(trace_path), "--trace-capacity", "64",
        ])
        assert code == 0
        export = json.loads(json_path.read_text())
        assert "controller" in export and "epochs" in export
        lines = trace_path.read_text().splitlines()
        assert 0 < len(lines) <= 64
        event = json.loads(lines[0])
        assert {"tick", "cmd", "bank"} <= set(event)

    def test_alternate_series(self, capsys):
        code = main([
            "stats", "mcf", "--instructions", "4000", "--warmup", "1000",
            "--epoch", "500", "--series", "read_latency",
        ])
        assert code == 0
        assert "read_latency per epoch" in capsys.readouterr().out

    def test_unknown_series_rejected(self, capsys):
        code = main([
            "stats", "libq", "--instructions", "2000", "--warmup", "500",
            "--series", "bogus",
        ])
        assert code == 2
        assert "unknown epoch series" in capsys.readouterr().err


class TestCampaignCommand:
    def test_rejects_unknown_mechanism(self, capsys, tmp_path):
        code = main(
            ["campaign", "libq", "--mechanisms", "magic",
             "--instructions", "1000", "--warmup", "100",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown mechanism 'magic'" in err
        assert "registered mechanisms" in err

    def test_serial_campaign(self, capsys, tmp_path):
        code = main([
            "campaign", "libq", "--jobs", "1",
            "--instructions", "2000", "--warmup", "500",
            "--cache-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wl:libq@baseline#0" in out
        assert "wl:libq@crow-cache#0" in out
        assert "failed=0" in out
        assert list(tmp_path.glob("*.pkl"))  # results were cached

    def test_parallel_campaign_with_journal(self, capsys, tmp_path):
        journal = tmp_path / "journal.jsonl"
        code = main([
            "campaign", "libq", "h264-dec", "--jobs", "2",
            "--mechanisms", "baseline",
            "--instructions", "2000", "--warmup", "500",
            "--cache-dir", str(tmp_path / "cache"),
            "--journal", str(journal),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "done=2 failed=0" in out

        from repro.exec import read_journal

        events = [e["event"] for e in read_journal(journal)]
        assert events[0] == "campaign_start"
        assert events[-1] == "campaign_end"
        assert events.count("task_done") == 2

    def test_campaign_telemetry_journal(self, capsys, tmp_path):
        journal = tmp_path / "journal.jsonl"
        code = main([
            "campaign", "libq", "--jobs", "1",
            "--mechanisms", "crow-cache", "--telemetry",
            "--instructions", "2000", "--warmup", "500",
            "--cache-dir", str(tmp_path / "cache"),
            "--journal", str(journal),
        ])
        assert code == 0
        capsys.readouterr()

        from repro.exec import read_journal

        events = [e for e in read_journal(journal)
                  if e["event"] == "task_telemetry"]
        assert len(events) == 1
        entry = events[0]
        assert entry["cached"] is False
        assert len(entry["telemetry_digest"]) == 16
        assert entry["reads_served"] > 0
        assert "crow_hit_rate" in entry

        # A cache-hit rerun journals the identical telemetry digest.
        assert main([
            "campaign", "libq", "--jobs", "1",
            "--mechanisms", "crow-cache", "--telemetry",
            "--instructions", "2000", "--warmup", "500",
            "--cache-dir", str(tmp_path / "cache"),
            "--journal", str(journal),
        ]) == 0
        capsys.readouterr()
        events = [e for e in read_journal(journal)
                  if e["event"] == "task_telemetry"]
        assert len(events) == 2
        assert events[1]["cached"] is True
        assert events[1]["telemetry_digest"] == entry["telemetry_digest"]

    def test_campaign_reuses_cache(self, capsys, tmp_path):
        argv = [
            "campaign", "libq", "--jobs", "1", "--mechanisms", "baseline",
            "--instructions", "2000", "--warmup", "500",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cached" in out
        assert "cache hits=1" in out
