"""Tests for command-stream recording and replay validation."""

import pytest

from repro import SystemConfig, System, workload
from repro.dram import CrowTimings, DramChannel, DramGeometry, TimingParameters
from repro.dram.commands import ActTimings, Command, CommandKind, RowId
from repro.errors import ConfigError
from repro.validation import CommandRecorder, RecordedCommand, replay

GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()
CROW = CrowTimings.from_factors(TIMING)


def act(row: int, bank: int = 0) -> Command:
    return Command(CommandKind.ACT, bank=bank, rows=(RowId.regular(row, 512),))


def act_t(row: int, copy_index: int = 0) -> Command:
    regular = RowId.regular(row, 512)
    return Command(
        CommandKind.ACT_T, bank=0,
        rows=(regular, RowId.copy(regular.subarray, copy_index)),
        timings=ActTimings(
            trcd=CROW.trcd_act_t_full, tras_full=CROW.tras_act_t_full,
            tras_early=CROW.tras_act_t_early, twr=CROW.twr_mra_early,
            twr_full=CROW.twr_mra_full,
        ),
    )


def act_c(row: int, copy_index: int = 0) -> Command:
    regular = RowId.regular(row, 512)
    return Command(
        CommandKind.ACT_C, bank=0,
        rows=(regular, RowId.copy(regular.subarray, copy_index)),
        timings=ActTimings(
            trcd=CROW.trcd_act_c, tras_full=CROW.tras_act_c_full,
            tras_early=CROW.tras_act_c_full, twr=CROW.twr_mra_full,
        ),
    )


class TestRecorder:
    def test_records_issued_commands(self):
        channel = DramChannel(GEO, TIMING)
        channel.recorder = CommandRecorder()
        channel.issue(act(5), 0)
        assert len(channel.recorder) == 1
        cycle, command = channel.recorder.records[0]
        assert cycle == 0 and command.kind is CommandKind.ACT

    def test_rejected_commands_not_recorded(self):
        from repro.errors import TimingViolationError

        channel = DramChannel(GEO, TIMING)
        channel.recorder = CommandRecorder()
        channel.issue(act(5), 0)
        with pytest.raises(TimingViolationError):
            channel.issue(Command(CommandKind.RD, bank=0, col=0), 1)
        assert len(channel.recorder) == 1

    def test_capacity_drops_excess(self):
        recorder = CommandRecorder(capacity=1)
        recorder.record(0, act(1))
        recorder.record(1, act(2))
        assert len(recorder) == 1 and recorder.dropped == 1

    def test_save_load_round_trip(self, tmp_path):
        recorder = CommandRecorder()
        recorder.record(0, act_c(5))
        recorder.record(100, Command(CommandKind.PRE, bank=0))
        recorder.record(200, act_t(5))
        path = tmp_path / "cmds.jsonl"
        recorder.save(path)
        loaded = CommandRecorder.load(path)
        assert loaded.records == recorder.records

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            CommandRecorder.load(tmp_path / "nope.jsonl")


class TestReplay:
    def test_clean_stream_passes(self):
        stream = [
            RecordedCommand(0, act_c(5)),
            RecordedCommand(100, Command(CommandKind.PRE, bank=0)),
            RecordedCommand(200, act_t(5)),
        ]
        report = replay(stream, GEO, TIMING)
        assert report.ok, report.summary()
        assert report.commands == 3

    def test_timing_violation_detected(self):
        stream = [
            RecordedCommand(0, act(5)),
            RecordedCommand(1, Command(CommandKind.RD, bank=0, col=0)),
        ]
        report = replay(stream, GEO, TIMING)
        assert not report.ok
        assert report.violations[0].kind == "timing"

    def test_act_t_without_prior_copy_detected(self):
        """ACT-t on a pair that was never duplicated corrupts data."""
        stream = [RecordedCommand(0, act_t(5))]
        report = replay(stream, GEO, TIMING)
        assert not report.ok
        assert report.violations[0].kind == "integrity"

    def test_unsafe_partial_eviction_detected(self):
        """Close a pair early (partial), then single-activate the row."""
        early_pre = CROW.tras_act_t_early
        stream = [
            RecordedCommand(0, act_c(5)),
            RecordedCommand(CROW.tras_act_c_full,
                            Command(CommandKind.PRE, bank=0)),
            RecordedCommand(1000, act_t(5)),
            RecordedCommand(1000 + early_pre,
                            Command(CommandKind.PRE, bank=0)),
            RecordedCommand(2000, act(5)),   # single ACT of partial row
        ]
        report = replay(stream, GEO, TIMING)
        assert not report.ok
        assert any(v.kind == "integrity" for v in report.violations)

    def test_out_of_order_stream_detected(self):
        stream = [
            RecordedCommand(100, act(5)),
            RecordedCommand(50, Command(CommandKind.PRE, bank=0)),
        ]
        report = replay(stream, GEO, TIMING)
        assert any(v.kind == "order" for v in report.violations)

    def test_stop_at_first(self):
        stream = [RecordedCommand(0, act_t(5)), RecordedCommand(0, act_t(6))]
        report = replay(stream, GEO, TIMING, stop_at_first=True)
        assert len(report.violations) == 1


class TestRoundTripAllKinds:
    """save/load must be lossless for every CommandKind and every field."""

    def one_of_each(self):
        """A stream containing all seven command kinds, with CROW row
        pairs, carried ActTimings and a SALP-style subarray-scoped
        column access / precharge."""
        return [
            (0, act(5)),
            (100, act_c(7, copy_index=2)),
            (200, act_t(7, copy_index=2)),
            (300, Command(CommandKind.RD, bank=1, col=17, subarray=3)),
            (400, Command(CommandKind.WR, bank=1, col=18, subarray=3)),
            (500, Command(CommandKind.PRE, bank=1, subarray=3)),
            (600, Command(CommandKind.REF, bank=0)),
        ]

    def test_every_kind_round_trips(self, tmp_path):
        recorder = CommandRecorder()
        for cycle, command in self.one_of_each():
            recorder.record(cycle, command)
        kinds = {record.command.kind for record in recorder}
        assert kinds == set(CommandKind)
        path = tmp_path / "all_kinds.jsonl"
        recorder.save(path)
        loaded = CommandRecorder.load(path)
        assert loaded.records == recorder.records

    def test_round_trip_preserves_every_field(self, tmp_path):
        recorder = CommandRecorder()
        for cycle, command in self.one_of_each():
            recorder.record(cycle, command)
        path = tmp_path / "fields.jsonl"
        recorder.save(path)
        loaded = CommandRecorder.load(path)
        for original, restored in zip(recorder.records, loaded.records):
            assert restored.cycle == original.cycle
            a, b = original.command, restored.command
            assert b.kind is a.kind
            assert b.bank == a.bank
            assert b.rows == a.rows
            assert b.col == a.col
            assert b.subarray == a.subarray
            assert b.timings == a.timings

    def test_crow_pair_rows_survive(self, tmp_path):
        """ACT_C/ACT_T (regular, copy) pairs keep kind/subarray/index."""
        recorder = CommandRecorder()
        recorder.record(0, act_c(700, copy_index=5))
        recorder.record(900, act_t(700, copy_index=5))
        path = tmp_path / "pairs.jsonl"
        recorder.save(path)
        loaded = CommandRecorder.load(path)
        for record in loaded.records:
            regular, copy = record.command.rows
            assert regular.kind.name == "REGULAR"
            assert copy.kind.name == "COPY"
            assert copy.subarray == regular.subarray
            assert copy.index == 5
        act_c_cmd = loaded.records[0].command
        assert act_c_cmd.timings.trcd == CROW.trcd_act_c
        act_t_cmd = loaded.records[1].command
        assert act_t_cmd.timings.twr_full == CROW.twr_mra_full

    def test_all_kinds_stream_replays(self, tmp_path):
        """A legal stream touching every kind replays with zero
        violations after a save/load round trip."""
        t = TIMING
        stream = [
            (0, act_c(5)),
            (CROW.tras_act_c_full, Command(CommandKind.PRE, bank=0)),
            (1000, act_t(5)),
            (1000 + CROW.trcd_act_t_full,
             Command(CommandKind.RD, bank=0, col=0)),
            (1000 + CROW.trcd_act_t_full + t.tcl + t.tbl + 2 - t.tcwl,
             Command(CommandKind.WR, bank=0, col=1)),
            (3000, Command(CommandKind.PRE, bank=0)),
            (4000, act(9, bank=1)),
            (4000 + t.tras, Command(CommandKind.PRE, bank=1)),
            (6000, Command(CommandKind.REF, bank=0)),
        ]
        recorder = CommandRecorder()
        for cycle, command in stream:
            recorder.record(cycle, command)
        path = tmp_path / "legal.jsonl"
        recorder.save(path)
        report = replay(CommandRecorder.load(path), GEO, TIMING)
        assert report.ok, report.summary()
        assert report.commands == len(stream)


class TestEndToEndValidation:
    @pytest.mark.parametrize("mechanism", ["baseline", "crow-cache"])
    def test_full_system_streams_replay_clean(self, mechanism):
        """The streams our controller + mechanisms emit must replay with
        zero violations — the strongest whole-stack correctness check."""
        config = SystemConfig(mechanism=mechanism, record_commands=True)
        system = System(config, [workload("h264-dec").trace(0)])
        system.run(instructions=4_000, warmup_instructions=1_000,
                   prewarm_accesses=10_000)
        total = 0
        for recorder in system.recorders:
            report = replay(recorder, system.geometry, system.timing)
            assert report.ok, report.summary()
            total += report.commands
        assert total > 0
