"""Tests for the per-channel memory controller."""

import pytest

from repro.controller import (
    ChannelController,
    ControllerConfig,
    MemRequest,
    RequestType,
)
from repro.dram import AddressMapper, DramChannel, DramGeometry, TimingParameters
from repro.dram.commands import CommandKind
from repro.errors import ConfigError

GEO = DramGeometry()
TIMING = TimingParameters.lpddr4()
MAPPER = AddressMapper(GEO)


def make_controller(refresh=False, **config_kwargs):
    channel = DramChannel(GEO, TIMING)
    controller = ChannelController(
        channel,
        config=ControllerConfig(**config_kwargs),
        refresh_enabled=refresh,
    )
    return controller, channel


def make_request(address, type=RequestType.READ, callback=None):
    return MemRequest(type, address, MAPPER.decode(address), callback=callback)


def channel0_address(row: int, col: int = 0, bank: int = 0) -> int:
    """Physical address on channel 0 with the given coordinates."""
    from repro.dram.address import DramAddress

    return MAPPER.encode(DramAddress(channel=0, rank=0, bank=bank, row=row, col=col))


def run_until_drained(controller, limit=500_000):
    now = 0
    while controller.pending_requests and now < limit:
        now = max(controller.tick(now), now + 1)
    assert controller.pending_requests == 0, "controller failed to drain"
    return now


class TestBasicService:
    def test_single_read_latency(self):
        controller, channel = make_controller()
        finished = []
        request = make_request(
            channel0_address(row=7), callback=lambda r, t: finished.append(t)
        )
        controller.enqueue(request, 0)
        run_until_drained(controller)
        assert finished
        # ACT at ~0, RD at tRCD, data at tRCD + tCL + tBL.
        assert finished[0] == TIMING.trcd + TIMING.tcl + TIMING.tbl

    def test_row_hit_second_read_is_faster(self):
        controller, channel = make_controller()
        times = []
        for col in (0, 1):
            controller.enqueue(
                make_request(
                    channel0_address(row=7, col=col),
                    callback=lambda r, t: times.append(t),
                ),
                0,
            )
        run_until_drained(controller)
        first, second = sorted(times)
        assert second - first == TIMING.tccd  # pure column access spacing

    def test_writes_complete(self):
        controller, channel = make_controller()
        done = []
        controller.enqueue(
            make_request(
                channel0_address(row=3),
                type=RequestType.WRITE,
                callback=lambda r, t: done.append(t),
            ),
            0,
        )
        run_until_drained(controller)
        assert done and channel.counts[CommandKind.WR] == 1

    def test_row_conflict_closes_and_reopens(self):
        controller, channel = make_controller()
        controller.enqueue(make_request(channel0_address(row=1)), 0)
        controller.enqueue(make_request(channel0_address(row=2)), 0)
        run_until_drained(controller)
        assert channel.counts[CommandKind.ACT] == 2
        assert channel.counts[CommandKind.PRE] >= 1
        assert controller.stats["row_conflicts"] >= 1


class TestQueueing:
    def test_queue_capacity_enforced(self):
        controller, _ = make_controller(read_queue_size=2, write_drain_high=2,
                                        write_drain_low=1, write_queue_size=2)
        assert controller.enqueue(make_request(channel0_address(1)), 0)
        assert controller.enqueue(make_request(channel0_address(2)), 0)
        assert not controller.can_accept(RequestType.READ)
        assert not controller.enqueue(make_request(channel0_address(3)), 0)

    def test_write_forwarding_serves_read_from_write_queue(self):
        controller, channel = make_controller()
        address = channel0_address(row=9)
        controller.enqueue(make_request(address, type=RequestType.WRITE), 0)
        got = []
        controller.enqueue(
            make_request(address, callback=lambda r, t: got.append(t)), 0
        )
        assert got, "forwarded read completes immediately"
        assert controller.stats["forwarded_reads"] == 1
        # The read never touched the DRAM device.
        assert channel.counts[CommandKind.RD] == 0

    def test_write_drain_watermarks(self):
        controller, channel = make_controller(
            write_drain_high=4, write_drain_low=1
        )
        for i in range(4):
            controller.enqueue(
                make_request(channel0_address(row=i), type=RequestType.WRITE), 0
            )
        assert controller.drain_mode
        run_until_drained(controller)
        assert not controller.drain_mode
        assert channel.counts[CommandKind.WR] == 4

    def test_reads_prioritized_over_buffered_writes(self):
        controller, channel = make_controller()
        controller.enqueue(
            make_request(channel0_address(row=1), type=RequestType.WRITE), 0
        )
        controller.enqueue(make_request(channel0_address(row=2)), 0)
        controller.tick(0)   # activation goes to the read's row
        rows = channel.open_rows(0)
        assert rows is not None and rows[0].bank_row(512) == 2


class TestRowPolicy:
    def test_timeout_closes_idle_row(self):
        controller, channel = make_controller(row_timeout_ns=75.0)
        controller.enqueue(make_request(channel0_address(row=5)), 0)
        now = run_until_drained(controller)
        assert channel.open_rows(0) is not None
        # Keep ticking past the timeout.
        for _ in range(100):
            now = max(controller.tick(now), now + 1)
            if channel.open_rows(0) is None:
                break
        assert channel.open_rows(0) is None

    def test_open_page_policy_keeps_row_open(self):
        controller, channel = make_controller(row_timeout_ns=None)
        controller.enqueue(make_request(channel0_address(row=5)), 0)
        now = run_until_drained(controller)
        for _ in range(50):
            now = max(controller.tick(now), now + 1)
        assert channel.open_rows(0) is not None

    def test_pending_request_blocks_timeout(self):
        controller, channel = make_controller(row_timeout_ns=75.0)
        # Request to a second channel-0 bank keeps pressure on that bank
        # but must not cause bank 0's row to be closed prematurely while a
        # request to bank 0's open row is still queued behind timing.
        controller.enqueue(make_request(channel0_address(row=5, bank=0)), 0)
        run_until_drained(controller)
        controller.enqueue(make_request(channel0_address(row=5, bank=0, col=3)), 0)
        run_until_drained(controller)
        # Row stayed open across both requests: only one activation.
        assert channel.counts[CommandKind.ACT] == 1


class TestRefresh:
    def test_refresh_issued_every_trefi(self):
        controller, channel = make_controller(refresh=True)
        now = 0
        horizon = TIMING.trefi * 3 + TIMING.trfc
        while now < horizon:
            now = max(controller.tick(now), now + 1)
        assert channel.counts[CommandKind.REF] == 3

    def test_refresh_precharges_open_rows_first(self):
        controller, channel = make_controller(refresh=True)
        controller.enqueue(make_request(channel0_address(row=5)), 0)
        now = 0
        while now < TIMING.trefi + TIMING.trfc:
            now = max(controller.tick(now), now + 1)
        assert channel.counts[CommandKind.REF] == 1
        assert channel.counts[CommandKind.PRE] >= 1

    def test_disabled_refresh_never_fires(self):
        controller, channel = make_controller(refresh=False)
        now = 0
        while now < TIMING.trefi * 2:
            now = max(controller.tick(now), now + 1)
        assert channel.counts[CommandKind.REF] == 0


class TestConfigValidation:
    def test_rejects_bad_watermarks(self):
        with pytest.raises(ConfigError):
            ControllerConfig(write_drain_high=2, write_drain_low=5)

    def test_rejects_drain_above_queue(self):
        with pytest.raises(ConfigError):
            ControllerConfig(write_queue_size=8, write_drain_high=16)

    def test_rejects_zero_queues(self):
        with pytest.raises(ConfigError):
            ControllerConfig(read_queue_size=0)


class TestStatistics:
    def test_average_read_latency(self):
        controller, _ = make_controller()
        controller.enqueue(make_request(channel0_address(row=1)), 0)
        run_until_drained(controller)
        assert controller.average_read_latency > 0

    def test_row_hit_rate(self):
        controller, _ = make_controller()
        for col in range(4):
            controller.enqueue(make_request(channel0_address(row=1, col=col)), 0)
        run_until_drained(controller)
        assert controller.row_hit_rate() > 0.5
