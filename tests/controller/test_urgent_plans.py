"""Tests for mechanism-initiated (urgent) activations in the controller."""

from repro.controller import ChannelController, MemRequest, RequestType
from repro.controller.mechanism import ActivationPlan, Mechanism
from repro.dram import AddressMapper, DramChannel, DramGeometry, TimingParameters
from repro.dram.address import DramAddress
from repro.dram.commands import ActTimings, CommandKind, RowId

GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()
MAPPER = AddressMapper(GEO)


class OneShotUrgent(Mechanism):
    """Test double: requests exactly one urgent ACT-c on bank 0."""

    def __init__(self, geometry, timing):
        super().__init__(geometry, timing)
        self.pending = True
        self.issued_plans = []

    def urgent_plan(self, now):
        if not self.pending:
            return None
        regular = RowId.regular(42, self.geometry.rows_per_subarray)
        timings = ActTimings(
            trcd=TIMING.trcd, tras_full=TIMING.tras + 12,
            tras_early=TIMING.tras + 12, twr=TIMING.twr,
        )
        return 0, ActivationPlan(
            kind=CommandKind.ACT_C,
            rows=(regular, RowId.copy(regular.subarray, 0)),
            timings=timings,
        )

    def on_activate(self, bank, plan, now):
        self.issued_plans.append(plan)
        if plan.kind is CommandKind.ACT_C:
            self.pending = False


def run_ticks(controller, limit=3000):
    now = 0
    for _ in range(limit):
        now = max(controller.tick(now), now + 1)
        if now > 10**8:
            break
    return now


class TestUrgentService:
    def test_urgent_issued_on_idle_bank(self):
        channel = DramChannel(GEO, TIMING)
        mechanism = OneShotUrgent(GEO, TIMING)
        controller = ChannelController(channel, mechanism=mechanism,
                                       refresh_enabled=False)
        controller.tick(0)
        assert not mechanism.pending
        assert channel.counts[CommandKind.ACT_C] == 1

    def test_urgent_precharges_open_bank_first(self):
        channel = DramChannel(GEO, TIMING)
        mechanism = OneShotUrgent(GEO, TIMING)
        mechanism.pending = False           # hold off while we open a row
        controller = ChannelController(channel, mechanism=mechanism,
                                       refresh_enabled=False)
        address = MAPPER.encode(
            DramAddress(channel=0, rank=0, bank=0, row=7, col=0)
        )
        controller.enqueue(
            MemRequest(RequestType.READ, address, MAPPER.decode(address)), 0
        )
        now = 0
        while controller.pending_requests:
            now = max(controller.tick(now), now + 1)
        assert channel.banks[0].is_open
        mechanism.pending = True
        for _ in range(500):
            now = max(controller.tick(now), now + 1)
            if not mechanism.pending:
                break
        assert not mechanism.pending
        assert channel.counts[CommandKind.PRE] >= 1
        assert channel.counts[CommandKind.ACT_C] == 1

    def test_urgent_precedes_demand_requests(self):
        channel = DramChannel(GEO, TIMING)
        mechanism = OneShotUrgent(GEO, TIMING)
        controller = ChannelController(channel, mechanism=mechanism,
                                       refresh_enabled=False)
        address = MAPPER.encode(
            DramAddress(channel=0, rank=0, bank=1, row=9, col=0)
        )
        controller.enqueue(
            MemRequest(RequestType.READ, address, MAPPER.decode(address)), 0
        )
        controller.tick(0)   # the single command slot goes to the urgent
        assert channel.counts[CommandKind.ACT_C] == 1
        assert channel.counts[CommandKind.ACT] == 0

    def test_urgent_respects_timing(self):
        """The urgent path waits when the bank cannot accept an ACT."""
        channel = DramChannel(GEO, TIMING)
        mechanism = OneShotUrgent(GEO, TIMING)
        controller = ChannelController(channel, mechanism=mechanism,
                                       refresh_enabled=False)
        run_ticks(controller, limit=5)
        # Exactly one urgent activation — never a duplicate.
        assert channel.counts[CommandKind.ACT_C] == 1
