"""Tests for the FR-FCFS / FR-FCFS-Cap scheduling policies."""

import pytest

from repro.controller import FrFcfs, FrFcfsCap, MemRequest, RequestType, Scheduler
from repro.dram import AddressMapper, DramGeometry
from repro.errors import ConfigError

MAPPER = AddressMapper(DramGeometry())


def req(address: int, arrival: int) -> MemRequest:
    request = MemRequest(RequestType.READ, address, MAPPER.decode(address))
    request.arrival = arrival
    return request


def ranked_list(scheduler, requests, hits, streaks=None):
    streaks = streaks or {}
    return list(
        scheduler.ranked(
            requests,
            lambda r: r in hits,
            lambda r: streaks.get(r, 0),
        )
    )


class TestFcfs:
    def test_keeps_arrival_order(self):
        requests = [req(i * 4096, i) for i in range(4)]
        assert ranked_list(Scheduler(), requests, hits=set()) == requests


class TestFrFcfs:
    def test_hits_jump_the_queue(self):
        requests = [req(i * 4096, i) for i in range(4)]
        hits = {requests[2]}
        order = ranked_list(FrFcfs(), requests, hits)
        assert order[0] is requests[2]
        assert order[1:] == [requests[0], requests[1], requests[3]]

    def test_hits_keep_relative_age_order(self):
        requests = [req(i * 4096, i) for i in range(4)]
        hits = {requests[1], requests[3]}
        order = ranked_list(FrFcfs(), requests, hits)
        assert order[:2] == [requests[1], requests[3]]


class TestFrFcfsCap:
    def test_capped_hit_loses_priority(self):
        requests = [req(0, 0), req(4096, 1)]
        hits = {requests[1]}
        # Bank streak already at the cap: the hit is demoted.
        order = ranked_list(
            FrFcfsCap(cap=4), requests, hits, streaks={requests[1]: 4}
        )
        assert order[0] is requests[0]

    def test_uncapped_hit_keeps_priority(self):
        requests = [req(0, 0), req(4096, 1)]
        hits = {requests[1]}
        order = ranked_list(
            FrFcfsCap(cap=4), requests, hits, streaks={requests[1]: 3}
        )
        assert order[0] is requests[1]

    def test_rejects_zero_cap(self):
        with pytest.raises(ConfigError):
            FrFcfsCap(cap=0)
