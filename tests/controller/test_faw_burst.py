"""tRRD/tFAW enforcement under an activation burst.

A 5-ACT burst (reads to five different banks enqueued simultaneously) is
the regression scenario for rank-scope activation pacing: the first four
ACTs are spaced by tRRD, and the fifth must additionally wait for the
sliding 4-ACT tFAW window to pass. The issued stream is asserted
directly AND cross-validated by the independent shadow checker; a
deliberately shaved copy of the same stream must be flagged.
"""

from dataclasses import replace

import pytest

from repro.check import ProtocolChecker
from repro.controller import ChannelController, ControllerConfig
from repro.dram import DramChannel, DramGeometry, TimingParameters
from repro.dram.commands import CommandKind
from repro.errors import ConformanceError
from repro.validation import CommandRecorder

from tests.controller.test_controller import (
    channel0_address,
    make_request,
    run_until_drained,
)

GEO = DramGeometry()
#: Standard LPDDR4 has tFAW == 4*tRRD exactly, which makes the four-ACT
#: window a no-op; widen it so tFAW is the *binding* constraint on the
#: fifth ACT and the test distinguishes the two rules.
TIMING = TimingParameters.lpddr4()
BURST_TIMING = replace(TIMING, tfaw=TIMING.tfaw + 16)


def run_burst(banks=5):
    """Enqueue one read per bank at cycle 0; return the recorder."""
    channel = DramChannel(GEO, BURST_TIMING)
    recorder = CommandRecorder()
    channel.recorder = recorder
    controller = ChannelController(
        channel, config=ControllerConfig(), refresh_enabled=False
    )
    for bank in range(banks):
        controller.enqueue(
            make_request(channel0_address(row=3, bank=bank)), 0
        )
    run_until_drained(controller)
    return recorder


def act_times(recorder):
    return [
        cycle
        for cycle, command in recorder
        if command.kind is CommandKind.ACT
    ]


class TestFiveActBurst:
    def test_trrd_spacing_between_consecutive_acts(self):
        acts = act_times(run_burst())
        assert len(acts) == 5
        for earlier, later in zip(acts, acts[1:]):
            assert later - earlier >= BURST_TIMING.trrd

    def test_fifth_act_waits_for_tfaw(self):
        acts = act_times(run_burst())
        # Sliding window: ACT i vs ACT i-4.
        assert acts[4] - acts[0] >= BURST_TIMING.tfaw
        # And the wait is real: four tRRD gaps alone would finish sooner.
        assert 4 * BURST_TIMING.trrd < BURST_TIMING.tfaw

    def test_burst_is_scheduled_tightly(self):
        """The controller should not be pacing more than required:
        the first four ACTs go at tRRD cadence, the fifth at tFAW."""
        acts = act_times(run_burst())
        for i, (earlier, later) in enumerate(zip(acts, acts[1:])):
            if i < 3:
                assert later - earlier == BURST_TIMING.trrd
        assert acts[4] - acts[0] == BURST_TIMING.tfaw

    def test_checker_cross_validates_the_stream(self):
        """The recorded burst replays violation-free through the
        independent shadow checker."""
        recorder = run_burst()
        checker = ProtocolChecker(
            GEO, BURST_TIMING, expect_refresh=False, mode="strict"
        )
        for cycle, command in recorder:
            checker.observe(cycle, command)
        assert checker.report.ok
        assert checker.report.commands == len(recorder)

    def test_checker_flags_shaved_tfaw_stream(self):
        """Replaying the same stream with the fifth ACT moved one cycle
        early must trip the tFAW rule — the negative control proving the
        cross-validation has teeth."""
        recorder = run_burst()
        acts_seen = 0
        checker = ProtocolChecker(
            GEO, BURST_TIMING, expect_refresh=False, mode="strict"
        )
        with pytest.raises(ConformanceError) as excinfo:
            for cycle, command in recorder:
                if command.kind is CommandKind.ACT:
                    acts_seen += 1
                    if acts_seen == 5:
                        cycle -= 1  # shave the tFAW wait
                checker.observe(cycle, command)
        assert excinfo.value.violation.constraint == "tFAW"
        assert excinfo.value.violation.slack == -1

    def test_larger_burst_keeps_sliding_window(self):
        """Every 4-apart ACT pair honors tFAW in an 8-ACT burst."""
        acts = act_times(run_burst(banks=8))
        assert len(acts) == 8
        for i in range(4, len(acts)):
            assert acts[i] - acts[i - 4] >= BURST_TIMING.tfaw
