"""Tests for the TL-DRAM, SALP, ChargeCache and ideal baselines."""

import pytest

from repro.baselines import ChargeCache, IdealCrowCache, SalpMasa, TlDram
from repro.controller import ChannelController, ControllerConfig, MemRequest, RequestType
from repro.dram import (
    AddressMapper,
    DramChannel,
    DramGeometry,
    TimingParameters,
)
from repro.dram.address import DramAddress
from repro.dram.commands import CommandKind, RowKind
from repro.units import ms_to_cycles

GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()
MAPPER = AddressMapper(GEO)


def address(row: int, col: int = 0, bank: int = 0) -> int:
    return MAPPER.encode(DramAddress(channel=0, rank=0, bank=bank, row=row, col=col))


class TestTlDram:
    def test_first_touch_copies_to_near_segment(self):
        tld = TlDram(GEO, TIMING)
        plan = tld.plan_activation(0, 100, now=0)
        assert plan.kind is CommandKind.ACT_C

    def test_hit_activates_near_row_alone_fast(self):
        tld = TlDram(GEO, TIMING)
        plan = tld.plan_activation(0, 100, now=0)
        tld.on_activate(0, plan, 0)
        hit = tld.plan_activation(0, 100, now=10)
        assert hit.kind is CommandKind.ACT
        assert hit.rows[0].kind is RowKind.COPY
        # Near segment: -73% tRCD, -80% tRAS.
        assert hit.timings.trcd == pytest.approx(TIMING.trcd * 0.27, abs=1)
        assert hit.timings.tras_full == pytest.approx(TIMING.tras * 0.20, abs=1)

    def test_far_access_pays_isolation_penalty(self):
        tld = TlDram(GEO, TIMING)
        # Exhaust the near segment of subarray 0 with other rows.
        for i in range(GEO.copy_rows_per_subarray):
            plan = tld.plan_activation(0, i, now=i)
            tld.on_activate(0, plan, i)
        # A row that loses the near segment race falls back to far timing
        # only when no victim is available; with LRU there is always a
        # victim, so verify the far timing object directly instead.
        assert tld._far_timings.trcd > TIMING.trcd

    def test_hit_rate_accounting(self):
        tld = TlDram(GEO, TIMING)
        for now, row in enumerate([5, 5, 6]):
            plan = tld.plan_activation(0, row, now)
            tld.on_activate(0, plan, now)
        assert tld.hits == 1 and tld.misses == 2


class TestSalp:
    def _controller(self, open_page: bool):
        channel = DramChannel(GEO, TIMING, salp_subarrays=GEO.subarrays_per_bank)
        config = ControllerConfig(
            row_timeout_ns=None if open_page else 75.0
        )
        controller = ChannelController(
            channel,
            mechanism=SalpMasa(GEO, TIMING, open_page=open_page),
            config=config,
            refresh_enabled=False,
        )
        return controller, channel

    def test_two_subarrays_stay_open_concurrently(self):
        controller, channel = self._controller(open_page=True)
        # Rows 0 and 600 live in different subarrays of bank 0.
        for row in (0, 600):
            request = MemRequest(
                RequestType.READ, address(row), MAPPER.decode(address(row))
            )
            controller.enqueue(request, 0)
        now = 0
        while controller.pending_requests:
            now = max(controller.tick(now), now + 1)
        bank = channel.banks[0]
        assert bank.open_buffer_count == 2

    def test_no_precharge_between_subarray_switches(self):
        controller, channel = self._controller(open_page=True)
        rows = [0, 600, 0, 600]   # alternating subarrays
        now = 0
        for row in rows:
            request = MemRequest(
                RequestType.READ, address(row), MAPPER.decode(address(row))
            )
            controller.enqueue(request, now)
            while controller.pending_requests:
                now = max(controller.tick(now), now + 1)
        # Each subarray activated once; revisits hit the open local buffer.
        assert channel.counts[CommandKind.ACT] == 2
        assert channel.counts[CommandKind.PRE] == 0

    def test_conventional_bank_would_conflict(self):
        channel = DramChannel(GEO, TIMING)
        controller = ChannelController(
            channel, config=ControllerConfig(row_timeout_ns=None),
            refresh_enabled=False,
        )
        now = 0
        for row in (0, 600, 0, 600):
            request = MemRequest(
                RequestType.READ, address(row), MAPPER.decode(address(row))
            )
            controller.enqueue(request, now)
            while controller.pending_requests:
                now = max(controller.tick(now), now + 1)
        assert channel.counts[CommandKind.ACT] == 4
        assert channel.counts[CommandKind.PRE] == 3

    def test_open_buffers_accumulate_energy_residency(self):
        controller, channel = self._controller(open_page=True)
        for row in (0, 600):
            request = MemRequest(
                RequestType.READ, address(row), MAPPER.decode(address(row))
            )
            controller.enqueue(request, 0)
        now = 0
        while controller.pending_requests:
            now = max(controller.tick(now), now + 1)
        later = now + 1000
        assert channel.open_buffer_cycles(later) > 1500


class TestChargeCache:
    def test_recently_precharged_row_is_fast(self):
        cc = ChargeCache(GEO, TIMING)
        plan = cc.plan_activation(0, 100, now=0)
        assert plan.timings is None
        from repro.dram.bank import PrechargeResult
        from repro.dram.commands import RowId

        result = PrechargeResult(
            rows=(RowId.regular(100, GEO.rows_per_subarray),),
            fully_restored=True,
            open_cycles=100,
        )
        cc.on_precharge(0, result, now=200)
        fast = cc.plan_activation(0, 100, now=300)
        assert fast.timings is not None
        assert fast.timings.trcd < TIMING.trcd

    def test_entry_expires_after_window(self):
        cc = ChargeCache(GEO, TIMING, window_ms=1.0)
        from repro.dram.bank import PrechargeResult
        from repro.dram.commands import RowId

        result = PrechargeResult(
            rows=(RowId.regular(100, GEO.rows_per_subarray),),
            fully_restored=True,
            open_cycles=100,
        )
        cc.on_precharge(0, result, now=0)
        late = ms_to_cycles(1.5, TIMING.clock_mhz)
        plan = cc.plan_activation(0, 100, now=late)
        assert plan.timings is None

    def test_capacity_eviction(self):
        cc = ChargeCache(GEO, TIMING, entries=2)
        from repro.dram.bank import PrechargeResult
        from repro.dram.commands import RowId

        for row in (1, 2, 3):
            result = PrechargeResult(
                rows=(RowId.regular(row, GEO.rows_per_subarray),),
                fully_restored=True,
                open_cycles=10,
            )
            cc.on_precharge(0, result, now=row)
        assert cc.plan_activation(0, 1, now=5).timings is None
        assert cc.plan_activation(0, 3, now=5).timings is not None


class TestIdealCrowCache:
    def test_every_activation_is_act_t(self):
        ideal = IdealCrowCache(GEO, TIMING)
        plan = ideal.plan_activation(0, 100, now=0)
        assert plan.kind is CommandKind.ACT_T
        assert plan.timings.trcd < TIMING.trcd

    def test_counts_activations(self):
        ideal = IdealCrowCache(GEO, TIMING)
        plan = ideal.plan_activation(0, 100, now=0)
        ideal.on_activate(0, plan, 0)
        assert ideal.activations == 1
