"""Tests for the analysis/reporting utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    TextTable,
    ascii_bars,
    ascii_timeseries,
    format_table,
    geometric_mean,
    normalize,
    summarize_speedups,
)
from repro.errors import ConfigError


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "a    bb"
        assert lines[1] == "---  --"
        assert lines[2] == "1    2 "

    def test_title_and_notes(self):
        text = format_table(["x"], [["1"]], title="t", notes=["n"])
        assert text.startswith("== t ==")
        assert text.endswith("note: n")

    def test_arity_mismatch(self):
        with pytest.raises(ConfigError):
            format_table(["a", "b"], [["only one"]])


class TestTextTable:
    def test_float_formatting(self):
        table = TextTable("t", ["name", "value"]).add_row("x", 1.23456)
        assert "1.235" in table.render()

    def test_bool_formatting(self):
        table = TextTable("t", ["name", "value"]).add_row("x", True)
        assert "yes" in table.render()

    def test_chaining(self):
        text = (
            TextTable("t", ["a"])
            .add_row(1)
            .add_row(2)
            .add_note("hello")
            .render()
        )
        assert "hello" in text

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigError):
            TextTable("t", [])


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=1,
                    max_size=20))
    def test_gmean_bounded_by_min_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ConfigError):
            normalize([1.0], 0.0)

    def test_summarize(self):
        summary = summarize_speedups({"a": 1.1, "b": 0.9})
        assert summary["best"] == "a"
        assert summary["worst"] == "b"
        assert summary["mean"] == pytest.approx(1.0)


class TestAsciiBars:
    def test_renders_all_labels(self):
        chart = ascii_bars({"crow": 1.07, "base": 1.0})
        assert "crow" in chart and "base" in chart
        assert "#" in chart

    def test_baseline_annotation(self):
        chart = ascii_bars({"crow": 1.10}, baseline=1.0)
        assert "(+10.0%)" in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            ascii_bars({})

    def test_bar_lengths_scale_with_values(self):
        chart = ascii_bars({"big": 4.0, "small": 1.0}, width=40)
        big, small = chart.splitlines()
        assert big.count("#") == 40
        assert small.count("#") == 10

    def test_zero_values_draw_minimum_bar(self):
        chart = ascii_bars({"a": 0.0, "b": 0.0})
        for line in chart.splitlines():
            assert line.count("#") == 1

    def test_non_finite_rejected(self):
        with pytest.raises(ConfigError):
            ascii_bars({"a": float("nan"), "b": 1.0})
        with pytest.raises(ConfigError):
            ascii_bars({"a": float("inf")})

    def test_narrow_width_rejected(self):
        with pytest.raises(ConfigError):
            ascii_bars({"a": 1.0}, width=4)


class TestAsciiTimeseries:
    def test_basic_render(self):
        chart = ascii_timeseries([0.1, 0.5, 1.0, 0.5], title="ipc")
        assert chart.startswith("ipc")
        assert "#" in chart
        assert "epoch 0..3 (4 samples)" in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            ascii_timeseries([])

    def test_all_gaps_rejected(self):
        with pytest.raises(ConfigError):
            ascii_timeseries([None, float("nan"), None])

    def test_gaps_render_as_blank_columns(self):
        chart = ascii_timeseries([1.0, None, 1.0], width=10, height=3)
        rows = [line.split("|", 1)[1] for line in chart.splitlines()
                if "|" in line]
        # The middle column is blank in every grid row.
        assert all(row[1] == " " for row in rows)
        assert all(row[0] == "#" for row in rows)

    def test_non_finite_samples_become_gaps(self):
        chart = ascii_timeseries([1.0, float("inf"), 2.0])
        assert "3 samples" in chart

    def test_downsamples_long_series(self):
        values = [float(i % 7) for i in range(1000)]
        chart = ascii_timeseries(values, width=20, height=4)
        grid_rows = [line for line in chart.splitlines() if "|" in line]
        assert all(len(row.split("|", 1)[1]) <= 20 for row in grid_rows)
        assert "1000 samples" in chart

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigError):
            ascii_timeseries([1.0], width=4)
        with pytest.raises(ConfigError):
            ascii_timeseries([1.0], height=1)
