"""Tests for the analysis/reporting utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    TextTable,
    ascii_bars,
    format_table,
    geometric_mean,
    normalize,
    summarize_speedups,
)
from repro.errors import ConfigError


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "a    bb"
        assert lines[1] == "---  --"
        assert lines[2] == "1    2 "

    def test_title_and_notes(self):
        text = format_table(["x"], [["1"]], title="t", notes=["n"])
        assert text.startswith("== t ==")
        assert text.endswith("note: n")

    def test_arity_mismatch(self):
        with pytest.raises(ConfigError):
            format_table(["a", "b"], [["only one"]])


class TestTextTable:
    def test_float_formatting(self):
        table = TextTable("t", ["name", "value"]).add_row("x", 1.23456)
        assert "1.235" in table.render()

    def test_bool_formatting(self):
        table = TextTable("t", ["name", "value"]).add_row("x", True)
        assert "yes" in table.render()

    def test_chaining(self):
        text = (
            TextTable("t", ["a"])
            .add_row(1)
            .add_row(2)
            .add_note("hello")
            .render()
        )
        assert "hello" in text

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigError):
            TextTable("t", [])


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=1,
                    max_size=20))
    def test_gmean_bounded_by_min_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ConfigError):
            normalize([1.0], 0.0)

    def test_summarize(self):
        summary = summarize_speedups({"a": 1.1, "b": 0.9})
        assert summary["best"] == "a"
        assert summary["worst"] == "b"
        assert summary["mean"] == pytest.approx(1.0)


class TestAsciiBars:
    def test_renders_all_labels(self):
        chart = ascii_bars({"crow": 1.07, "base": 1.0})
        assert "crow" in chart and "base" in chart
        assert "#" in chart

    def test_baseline_annotation(self):
        chart = ascii_bars({"crow": 1.10}, baseline=1.0)
        assert "(+10.0%)" in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            ascii_bars({})
