"""Tests for the IDD current set and the energy model."""

import pytest

from repro.dram import DramGeometry, DramChannel, TimingParameters
from repro.dram.commands import Command, CommandKind, RowId
from repro.energy import ChannelActivity, EnergyModel, IddCurrents
from repro.errors import ConfigError

TIMING = TimingParameters.lpddr4()


def activity(**kwargs) -> ChannelActivity:
    defaults = dict(
        n_act=0, n_act_t=0, n_act_c=0, n_rd=0, n_wr=0, n_ref=0,
        open_buffer_cycles=0, total_cycles=100_000,
    )
    defaults.update(kwargs)
    return ChannelActivity(**defaults)


class TestIddCurrents:
    def test_open_bank_overhead_matches_datasheet_quote(self):
        """Paper Section 8.1.4: IDD3N is 10.9% above IDD2N."""
        i = IddCurrents.lpddr4()
        assert i.idd3n / i.idd2n == pytest.approx(1.109, abs=0.002)

    def test_refresh_current_grows_with_density(self):
        values = [IddCurrents.lpddr4(d).idd5 for d in (8, 16, 32, 64)]
        assert values == sorted(values) and values[0] < values[-1]

    def test_rejects_unknown_density(self):
        with pytest.raises(ConfigError):
            IddCurrents.lpddr4(density_gbit=4)

    def test_rejects_inverted_standby(self):
        with pytest.raises(ConfigError):
            IddCurrents(idd2n=40.0, idd3n=30.0)


class TestEnergyModel:
    @pytest.fixture
    def model(self) -> EnergyModel:
        return EnergyModel(TIMING)

    def test_mra_activation_costs_more(self, model):
        plain = model.breakdown(activity(n_act=100))
        mra = model.breakdown(activity(n_act_t=100))
        assert mra.activation_nj == pytest.approx(
            plain.activation_nj * 1.058, rel=1e-6
        )

    def test_background_scales_with_time(self, model):
        short = model.breakdown(activity(total_cycles=10_000))
        long = model.breakdown(activity(total_cycles=20_000))
        assert long.background_nj == pytest.approx(2 * short.background_nj)

    def test_open_buffers_add_static_power(self, model):
        closed = model.breakdown(activity())
        open_ = model.breakdown(activity(open_buffer_cycles=100_000))
        assert open_.background_nj > closed.background_nj
        # The increment matches the IDD3N/IDD2N ratio when one buffer is
        # open the whole time.
        assert open_.background_nj / closed.background_nj == pytest.approx(
            1.109, abs=0.002
        )

    def test_refresh_energy_grows_with_density(self):
        low = EnergyModel(
            TimingParameters.lpddr4(density_gbit=8), IddCurrents.lpddr4(8)
        ).ref_energy_nj
        high = EnergyModel(
            TimingParameters.lpddr4(density_gbit=64), IddCurrents.lpddr4(64)
        ).ref_energy_nj
        assert high > 5 * low

    def test_refresh_can_reach_half_of_idle_energy_at_64gbit(self):
        """Section 1: refresh consumes up to ~50% of DRAM energy in
        high-density idle systems."""
        timing = TimingParameters.lpddr4(density_gbit=64)
        model = EnergyModel(timing, IddCurrents.lpddr4(64))
        refs_per_window = 8192
        window_cycles = timing.trefi * refs_per_window
        idle = model.breakdown(
            activity(n_ref=refs_per_window, total_cycles=window_cycles)
        )
        share = idle.refresh_nj / idle.total_nj
        assert 0.35 < share < 0.6

    def test_breakdown_addition(self, model):
        a = model.breakdown(activity(n_act=10))
        b = model.breakdown(activity(n_rd=10))
        combined = a + b
        assert combined.total_nj == pytest.approx(a.total_nj + b.total_nj)

    def test_from_channel_collects_counts(self):
        geo = DramGeometry()
        channel = DramChannel(geo, TIMING)
        channel.issue(
            Command(CommandKind.ACT, bank=0, rows=(RowId.regular(5, 512),)), 0
        )
        act = ChannelActivity.from_channel(channel, total_cycles=1000, now=500)
        assert act.n_act == 1
        assert act.open_buffer_cycles == 500


class TestBreakdownFiniteness:
    """NaN/inf joule counts die at construction, not in downstream math.

    Same policy as ``analysis.ascii_bars``: both producing a breakdown
    with a non-finite component and combining two breakdowns whose sum
    overflows must raise, in both directions of the ``+``.
    """

    def test_construction_rejects_nan_naming_the_field(self):
        from repro.energy import EnergyBreakdown

        with pytest.raises(ConfigError, match="refresh_nj"):
            EnergyBreakdown(0.0, 0.0, 0.0, float("nan"), 0.0)

    def test_construction_rejects_inf_naming_the_field(self):
        from repro.energy import EnergyBreakdown

        with pytest.raises(ConfigError, match="activation_nj"):
            EnergyBreakdown(float("inf"), 0.0, 0.0, 0.0, 0.0)

    def test_addition_overflowing_to_inf_is_rejected_both_ways(self):
        from repro.energy import EnergyBreakdown

        huge = EnergyBreakdown(1e308, 0.0, 0.0, 0.0, 0.0)
        small = EnergyBreakdown(1e308, 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigError, match="activation_nj"):
            huge + small
        with pytest.raises(ConfigError, match="activation_nj"):
            small + huge

    def test_coefficient_set_rejects_non_finite_fields(self):
        from dataclasses import replace

        from repro.energy import EnergyModel

        coefficients = EnergyModel(TIMING, IddCurrents.lpddr4()).coefficients()
        with pytest.raises(ConfigError, match="act_nj"):
            replace(coefficients, act_nj=float("nan"))
