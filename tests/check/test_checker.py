"""Unit tests for the shadow protocol checker.

Synthetic command streams are fed straight to
:class:`repro.check.ProtocolChecker` (bypassing the device, which would
reject them itself) — the checker plays the role of a protocol analyzer
attached to a possibly-buggy controller. Every rule family has a
violating stream and a minimally-legal one.
"""

import pytest

from repro.check import CheckReport, CheckViolation, ProtocolChecker
from repro.dram.commands import (
    ActTimings,
    Command,
    CommandKind,
    RowId,
    RowKind,
)
from repro.dram.geometry import DramGeometry
from repro.dram.timing import CrowTimings, TimingParameters
from repro.errors import ConfigError, ConformanceError

GEO = DramGeometry()
T = TimingParameters.lpddr4()
CROW = CrowTimings.from_factors(T)


def act(row=0, bank=0):
    return Command(
        kind=CommandKind.ACT,
        bank=bank,
        rows=(RowId.regular(row, GEO.rows_per_subarray),),
    )


def act_c(row=0, way=0, bank=0, timings=None):
    regular = RowId.regular(row, GEO.rows_per_subarray)
    return Command(
        kind=CommandKind.ACT_C,
        bank=bank,
        rows=(regular, RowId.copy(regular.subarray, way)),
        timings=timings,
    )


def act_t(row=0, way=0, bank=0, timings=None):
    regular = RowId.regular(row, GEO.rows_per_subarray)
    return Command(
        kind=CommandKind.ACT_T,
        bank=bank,
        rows=(regular, RowId.copy(regular.subarray, way)),
        timings=timings,
    )


def rd(bank=0):
    return Command(kind=CommandKind.RD, bank=bank, rows=(), col=0)


def wr(bank=0):
    return Command(kind=CommandKind.WR, bank=bank, rows=(), col=0)


def pre(bank=0):
    return Command(kind=CommandKind.PRE, bank=bank, rows=())


def ref():
    return Command(kind=CommandKind.REF, bank=0, rows=())


def checker(**kwargs):
    kwargs.setdefault("mode", "report")
    kwargs.setdefault("expect_refresh", False)
    return ProtocolChecker(GEO, T, **kwargs)


def constraints(c):
    return [v.constraint for v in c.report.violations]


class TestTimingConstraints:
    def test_shaved_trcd_read_is_caught(self):
        """Acceptance mutation #1: a RD one cycle before tRCD expires."""
        c = checker()
        c.observe(0, act())
        c.observe(T.trcd - 1, rd())
        (v,) = c.report.violations
        assert v.constraint == "tRCD"
        assert (v.prior, v.command) == ("ACT", "RD")
        assert v.required == T.trcd
        assert v.actual == T.trcd - 1
        assert v.slack == -1

    def test_rd_at_trcd_is_legal(self):
        c = checker()
        c.observe(0, act())
        c.observe(T.trcd, rd())
        assert c.report.ok

    def test_crow_act_t_reduced_trcd_applies(self):
        """CROW's ACT-t tRCD is honored: legal for ACT-t, not for ACT."""
        timings = ActTimings(
            trcd=CROW.trcd_act_t_full,
            tras_full=CROW.tras_act_t_full,
            tras_early=CROW.tras_act_t_early,
            twr=T.twr,
        )
        c = checker(assume_ideal_duplicates=True)
        c.observe(0, act_t(timings=timings))
        c.observe(CROW.trcd_act_t_full, rd())
        assert c.report.ok
        assert CROW.trcd_act_t_full < T.trcd

    def test_early_precharge_violates_tras(self):
        c = checker()
        c.observe(0, act())
        c.observe(T.tras - 1, pre())
        assert constraints(c) == ["tRAS"]

    def test_act_before_trp_expires(self):
        c = checker()
        c.observe(0, act())
        c.observe(T.tras, pre())
        c.observe(T.tras + T.trp - 1, act(1))
        assert "tRP" in constraints(c)

    def test_trc_reported_for_act_to_act(self):
        c = checker()
        c.observe(0, act())
        c.observe(T.tras, pre())
        c.observe(T.tras + T.trp - 1, act(1))
        assert "tRC" in constraints(c)

    def test_trrd_between_banks(self):
        c = checker()
        c.observe(0, act(0, bank=0))
        c.observe(T.trrd - 1, act(0, bank=1))
        assert constraints(c) == ["tRRD"]

    def test_tfaw_fifth_act_in_window(self):
        c = checker()
        for i in range(4):
            c.observe(i * T.trrd, act(i, bank=i))
        c.observe(T.tfaw - 1, act(4, bank=4))
        assert "tFAW" in constraints(c)

    def test_tfaw_fifth_act_after_window_is_legal(self):
        c = checker()
        for i in range(4):
            c.observe(i * T.trrd, act(i, bank=i))
        c.observe(T.tfaw, act(4, bank=4))
        assert c.report.ok

    def test_tccd_between_reads(self):
        c = checker()
        c.observe(0, act())
        c.observe(T.trcd, rd())
        c.observe(T.trcd + T.tccd - 1, rd())
        assert constraints(c) == ["tCCD"]

    def test_twtr_write_to_read(self):
        c = checker()
        c.observe(0, act())
        c.observe(T.trcd, wr())
        gap = T.tcwl + T.tbl + T.twtr
        c.observe(T.trcd + gap - 1, rd())
        assert constraints(c) == ["tWTR"]

    def test_read_to_write_turnaround(self):
        c = checker()
        c.observe(0, act())
        c.observe(T.trcd, rd())
        gap = T.tcl + T.tbl + 2 - T.tcwl
        c.observe(T.trcd + gap - 1, wr())
        assert constraints(c) == ["rd-wr-turnaround"]

    def test_trtp_read_to_precharge(self):
        c = checker()
        c.observe(0, act())
        t_rd = T.tras
        c.observe(t_rd, rd())
        c.observe(t_rd + T.trtp - 1, pre())
        assert constraints(c) == ["tRTP"]

    def test_twr_write_recovery_before_precharge(self):
        c = checker()
        c.observe(0, act())
        t_wr = T.tras
        c.observe(t_wr, wr())
        gap = T.tcwl + T.tbl + T.twr
        c.observe(t_wr + gap - 1, pre())
        assert constraints(c) == ["tWR"]

    def test_trfc_blackout_after_refresh(self):
        c = checker()
        c.observe(0, ref())
        c.observe(T.trfc - 1, act())
        assert "tRFC" in constraints(c)

    def test_command_bus_double_occupancy(self):
        c = checker()
        c.observe(0, act(0, bank=0))
        # ACT occupies the bus for one cycle; same-cycle issue collides.
        c.observe(0, rd(bank=1))
        assert "cmd-bus" in constraints(c)

    def test_crow_act_occupies_bus_two_cycles(self):
        c = checker(assume_ideal_duplicates=True)
        c.observe(0, act_t())
        c.observe(1, act(0, bank=1))
        assert "cmd-bus" in constraints(c)

    def test_trefi_cadence_gap(self):
        c = ProtocolChecker(GEO, T, mode="report", expect_refresh=True)
        c.observe(9 * T.trefi + 1, ref())
        assert "tREFI" in constraints(c)

    def test_refresh_coverage_at_finalize(self):
        c = ProtocolChecker(GEO, T, mode="report", expect_refresh=True)
        c.observe(T.trefi, ref())
        report = c.finalize(20 * T.trefi)
        assert "refresh-coverage" in [
            v.constraint for v in report.violations
        ]

    def test_refresh_coverage_satisfied(self):
        c = ProtocolChecker(GEO, T, mode="report", expect_refresh=True)
        for i in range(1, 20):
            c.observe(i * T.trefi, ref())
        assert c.finalize(20 * T.trefi).ok


class TestStateMachine:
    def test_double_activation(self):
        c = checker()
        c.observe(0, act(0))
        c.observe(1000, act(1))
        assert constraints(c) == ["double-act"]

    def test_read_closed_bank(self):
        c = checker()
        c.observe(0, rd())
        assert constraints(c) == ["closed-bank-access"]

    def test_write_closed_bank(self):
        c = checker()
        c.observe(0, wr())
        assert constraints(c) == ["closed-bank-access"]

    def test_precharge_closed_bank(self):
        c = checker()
        c.observe(0, pre())
        assert constraints(c) == ["pre-closed-bank"]

    def test_refresh_with_open_bank(self):
        c = checker()
        c.observe(0, act())
        c.observe(1000, ref())
        assert constraints(c) == ["ref-open-bank"]

    def test_pre_closes_what_was_opened(self):
        c = checker()
        c.observe(0, act(0))
        c.observe(T.tras, pre())
        c.observe(T.tras + T.trp, act(1))
        assert c.report.ok


class TestCrowInvariants:
    def test_act_t_on_unmapped_copy_row(self):
        """Acceptance mutation #2: ACT-t without a duplicate mapping."""
        c = checker()
        c.observe(0, act_t(row=0, way=3))
        assert constraints(c) == ["crow-act-t-unmapped"]

    def test_act_t_after_act_c_is_legal(self):
        c = checker()
        c.observe(0, act_c(row=5, way=3))
        c.observe(T.trc, pre())
        c.observe(T.trc + T.trp, act_t(row=5, way=3))
        assert c.report.ok

    def test_act_t_wrong_source_row(self):
        c = checker()
        c.observe(0, act_c(row=5, way=3))
        c.observe(T.trc, pre())
        c.observe(T.trc + T.trp, act_t(row=6, way=3))
        assert "crow-act-t-unmapped" in constraints(c)

    def test_act_c_overwrites_mapping(self):
        c = checker()
        c.observe(0, act_c(row=5, way=3))
        c.observe(T.trc, pre())
        c.observe(T.trc + T.trp, act_c(row=9, way=3))
        c.observe(2 * T.trc, pre())
        c.observe(2 * T.trc + T.trp, act_t(row=5, way=3))
        assert "crow-act-t-unmapped" in constraints(c)

    def test_act_c_destination_out_of_range(self):
        c = checker()
        c.observe(0, act_c(row=0, way=GEO.copy_rows_per_subarray))
        assert "crow-copy-range" in constraints(c)

    def test_plain_act_on_unmapped_copy_row(self):
        copy = RowId.copy(0, 2)
        c = checker()
        c.observe(0, Command(kind=CommandKind.ACT, bank=0, rows=(copy,)))
        assert constraints(c) == ["crow-act-copy-unmapped"]

    def test_plain_act_on_duplicated_copy_row_is_legal(self):
        c = checker()
        c.observe(0, act_c(row=5, way=2))
        c.observe(T.trc, pre())
        copy = RowId.copy(0, 2)
        c.observe(
            T.trc + T.trp,
            Command(kind=CommandKind.ACT, bank=0, rows=(copy,)),
        )
        assert c.report.ok

    def test_seeded_remap_allows_plain_act(self):
        c = checker()
        c.seed_remap(0, 17, RowId.copy(0, 1))
        copy = RowId.copy(0, 1)
        c.observe(0, Command(kind=CommandKind.ACT, bank=0, rows=(copy,)))
        assert c.report.ok

    def test_seed_remap_rejects_regular_row(self):
        c = checker()
        with pytest.raises(ConfigError):
            c.seed_remap(0, 17, RowId.regular(3, GEO.rows_per_subarray))

    def test_weak_row_activation_at_extended_window(self):
        c = checker(extended_refresh=True, weak_rows={(0, 5)})
        c.observe(0, act(5))
        assert constraints(c) == ["crow-ref-weak-row"]

    def test_weak_row_at_base_window_is_legal(self):
        c = checker(extended_refresh=False, weak_rows={(0, 5)})
        c.observe(0, act(5))
        assert c.report.ok

    def test_strong_row_at_extended_window_is_legal(self):
        c = checker(extended_refresh=True, weak_rows={(0, 5)})
        c.observe(0, act(6))
        assert c.report.ok

    def test_partial_restore_single_activation(self):
        """An early-terminated pair must not be sensed row-alone."""
        timings = ActTimings(
            trcd=CROW.trcd_act_t_full,
            tras_full=CROW.tras_act_t_full,
            tras_early=CROW.tras_act_t_early,
            twr=T.twr,
        )
        c = checker()
        c.observe(0, act_c(row=5, way=3))
        c.observe(T.trc, pre())
        t1 = T.trc + T.trp
        c.observe(t1, act_t(row=5, way=3, timings=timings))
        # Close after tras_early but before tras_full: partially restored.
        t2 = t1 + CROW.tras_act_t_early
        assert CROW.tras_act_t_early < CROW.tras_act_t_full
        c.observe(t2, pre())
        c.observe(t2 + T.trp, act(5))
        assert "crow-partial-single-act" in constraints(c)

    def test_partial_pair_reactivated_together_is_legal(self):
        timings = ActTimings(
            trcd=CROW.trcd_act_t_full,
            tras_full=CROW.tras_act_t_full,
            tras_early=CROW.tras_act_t_early,
            twr=T.twr,
        )
        c = checker()
        c.observe(0, act_c(row=5, way=3))
        c.observe(T.trc, pre())
        t1 = T.trc + T.trp
        c.observe(t1, act_t(row=5, way=3, timings=timings))
        t2 = t1 + CROW.tras_act_t_early
        c.observe(t2, pre())
        c.observe(t2 + T.trp, act_t(row=5, way=3, timings=timings))
        assert c.report.ok

    def test_evicting_partial_pair_is_flagged(self):
        timings = ActTimings(
            trcd=CROW.trcd_act_t_full,
            tras_full=CROW.tras_act_t_full,
            tras_early=CROW.tras_act_t_early,
            twr=T.twr,
        )
        c = checker()
        c.observe(0, act_c(row=5, way=3))
        c.observe(T.trc, pre())
        t1 = T.trc + T.trp
        c.observe(t1, act_t(row=5, way=3, timings=timings))
        t2 = t1 + CROW.tras_act_t_early
        c.observe(t2, pre())
        c.observe(t2 + T.trp, act_c(row=9, way=3))
        assert "crow-evict-partial" in constraints(c)

    def test_assume_ideal_duplicates_skips_mapping_check(self):
        c = checker(assume_ideal_duplicates=True)
        c.observe(0, act_t(row=0, way=0))
        assert c.report.ok


class TestModesAndReport:
    def test_strict_mode_raises_with_violation_attached(self):
        c = ProtocolChecker(GEO, T, mode="strict", expect_refresh=False)
        c.observe(0, act())
        with pytest.raises(ConformanceError) as excinfo:
            c.observe(T.trcd - 1, rd())
        violation = excinfo.value.violation
        assert isinstance(violation, CheckViolation)
        assert violation.constraint == "tRCD"
        # The violation is also recorded before the raise.
        assert c.report.violations == [violation]

    def test_report_mode_accumulates(self):
        c = checker()
        c.observe(0, rd())
        c.observe(1, rd(bank=1))
        assert len(c.report.violations) == 2
        assert not c.report.ok

    def test_max_violations_truncation(self):
        c = checker(max_violations=2)
        for i in range(5):
            c.observe(i, rd(bank=i % GEO.banks_per_rank))
        assert len(c.report.violations) == 2
        assert c.report.truncated == 3
        assert c.report.total_violations == 5

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            ProtocolChecker(GEO, T, mode="lenient")

    def test_report_merge_and_by_constraint(self):
        a = checker()
        a.observe(0, rd())
        b = checker()
        b.observe(0, act(0))
        b.observe(1000, act(1))
        merged = CheckReport().merge(a.report).merge(b.report)
        assert merged.commands == 3
        assert merged.by_constraint() == {
            "closed-bank-access": 1,
            "double-act": 1,
        }

    def test_report_json_round_trip(self, tmp_path):
        import json

        c = checker()
        c.observe(0, act())
        c.observe(T.trcd - 1, rd())
        path = tmp_path / "report.json"
        c.report.write_json(path)
        data = json.loads(path.read_text())
        assert data["total_violations"] == 1
        assert data["violations"][0]["constraint"] == "tRCD"
        assert data["violations"][0]["slack"] == -1

    def test_violation_str_format(self):
        c = checker()
        c.observe(0, act())
        c.observe(T.trcd - 1, rd())
        text = str(c.report.violations[0])
        assert "tRCD" in text
        assert "ACT->RD" in text
        assert "slack -1" in text

    def test_summary_lines(self):
        c = checker()
        c.observe(0, act())
        assert "conformant" in c.report.summary()
        c.observe(T.trcd - 1, rd())
        assert "violation" in c.report.summary()


class TestSalp:
    def test_per_subarray_slots(self):
        """Two subarrays of one SALP bank may be open concurrently."""
        c = ProtocolChecker(
            GEO, T, salp=True, mode="report", expect_refresh=False
        )
        rows = GEO.rows_per_subarray
        c.observe(0, act(0))
        c.observe(T.trrd, act(rows))  # next subarray, same bank
        assert c.report.ok

    def test_non_salp_rejects_second_open(self):
        c = checker()
        rows = GEO.rows_per_subarray
        c.observe(0, act(0))
        c.observe(T.trrd, act(rows))
        assert constraints(c) == ["double-act"]


class TestSystemIntegration:
    def test_checked_run_is_conformant_and_digest_stable(self):
        """Attaching the checker must not perturb simulated execution."""
        import json
        from pathlib import Path

        from repro.check.scenarios import run_checked_case

        data = Path(__file__).resolve().parent.parent / "data"
        expected = json.loads((data / "expected_digests.json").read_text())
        result, report = run_checked_case(
            ("libq",), "baseline", 2_000, 500, seed=1, telemetry=True
        )
        assert report.ok
        assert report.commands > 0
        want = expected["libq-baseline"]
        assert result.telemetry_digest() == want["digest"]
        assert result.cycles == want["cycles"]

    def test_config_rejects_bad_check_mode(self):
        from repro.sim.config import SystemConfig

        with pytest.raises(ConfigError):
            SystemConfig(check=True, check_mode="lenient")

    def test_check_report_requires_check_enabled(self):
        from repro.sim.config import SystemConfig
        from repro.sim.system import System
        from repro.trace.workloads import workload

        system = System(SystemConfig(), [workload("libq").trace(0)])
        with pytest.raises(ConfigError):
            system.check_report()
