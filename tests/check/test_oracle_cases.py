"""The conformance oracle over the repo's six reference cases.

The issue's acceptance bar: the checker must validate, with zero
violations, every stream the repo already treats as a correctness
oracle — the four perf-suite matrix cases plus the two committed
telemetry-digest cases. Together these cover single-core and 4-core
mixes, baseline and CROW-cache, refresh, and the full default geometry
(as opposed to the small scenario geometry the fuzz layer uses).
"""

import pytest

from repro.check.scenarios import run_checked_case
from repro.perf.suite import CASES

# (label, workloads, mechanism, instructions, warmup, seed)
ORACLE_CASES = [
    (case.name, case.workloads, case.mechanism, case.instructions,
     case.warmup_instructions, case.seed)
    for case in CASES
] + [
    ("digest-libq-baseline", ("libq",), "baseline", 2_000, 500, 1),
    ("digest-libq-crow-cache", ("libq",), "crow-cache", 2_000, 500, 1),
]


@pytest.mark.parametrize(
    "label, workloads, mechanism, instructions, warmup, seed",
    ORACLE_CASES,
    ids=[case[0] for case in ORACLE_CASES],
)
def test_oracle_case_is_conformant(
    label, workloads, mechanism, instructions, warmup, seed
):
    result, report = run_checked_case(
        workloads, mechanism, instructions, warmup, seed=seed
    )
    assert report.commands > 0, label
    assert report.ok, f"{label}: {report.summary()}"
    assert result.cycles > 0


def test_oracle_cases_cover_six_cases():
    assert len(ORACLE_CASES) == 6
