"""Unit tests for the repro.perf suite, serialization, and compare gate."""

import copy
import json

import pytest

from repro.perf import (
    EXIT_DIGEST_MISMATCH,
    EXIT_REGRESSION,
    PerfCase,
    compare,
    load_results,
    run_suite,
    serialize,
    spin_score_mops,
    write_results,
)

#: One tiny case keeps the end-to-end suite test under a second.
TINY = (
    PerfCase("tiny-libq", ("libq",), "baseline", 1_000, 200),
)


@pytest.fixture(scope="module")
def tiny_doc():
    return run_suite(repeat=1, cases=TINY)


class TestCalibration:
    def test_spin_score_is_positive_and_stable(self):
        score = spin_score_mops(iterations=100_000, repeats=2)
        assert score > 0
        # Same machine, back to back: within a generous noise envelope.
        again = spin_score_mops(iterations=100_000, repeats=2)
        assert 0.2 < score / again < 5.0


class TestSuite:
    def test_document_shape(self, tiny_doc):
        assert tiny_doc["schema"] == "repro-perf/1"
        case = tiny_doc["cases"]["tiny-libq"]
        for key in (
            "digest",
            "sim_cycles",
            "events",
            "wall_seconds",
            "sim_cycles_per_sec",
            "events_per_sec",
            "normalized_score",
        ):
            assert key in case, key
        assert case["sim_cycles"] > 0
        assert case["events"] > 0
        assert case["normalized_score"] > 0
        assert tiny_doc["composite"] > 0

    def test_serialization_is_byte_stable(self, tiny_doc):
        assert serialize(tiny_doc) == serialize(json.loads(serialize(tiny_doc)))
        assert serialize(tiny_doc).endswith("\n")

    def test_write_and_load_roundtrip(self, tiny_doc, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        write_results(tiny_doc, path)
        assert load_results(path) == json.loads(serialize(tiny_doc))

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/9"}')
        with pytest.raises(ValueError):
            load_results(path)

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            run_suite(repeat=0, cases=TINY)


class TestCompareGate:
    def test_identical_results_pass(self, tiny_doc, capsys):
        assert compare(tiny_doc, tiny_doc) == 0
        out = capsys.readouterr().out
        assert "perf OK" in out
        assert "1.00x" in out

    def test_regression_beyond_threshold_fails(self, tiny_doc, capsys):
        slow = copy.deepcopy(tiny_doc)
        slow["composite"] = tiny_doc["composite"] * 0.5
        for case in slow["cases"].values():
            case["normalized_score"] *= 0.5
        assert compare(slow, tiny_doc) == EXIT_REGRESSION
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_regression_within_threshold_passes(self, tiny_doc):
        slight = copy.deepcopy(tiny_doc)
        slight["composite"] = tiny_doc["composite"] * 0.9
        assert compare(slight, tiny_doc, threshold=0.15) == 0

    def test_digest_mismatch_trumps_speed(self, tiny_doc, capsys):
        changed = copy.deepcopy(tiny_doc)
        changed["cases"]["tiny-libq"]["digest"] = "0000000000000000"
        # Even a *faster* run fails when behaviour changed.
        changed["composite"] = tiny_doc["composite"] * 10
        assert compare(changed, tiny_doc) == EXIT_DIGEST_MISMATCH
        assert "DIGEST MISMATCH" in capsys.readouterr().out

    def test_missing_case_warns_but_gates_on_composite(self, tiny_doc, capsys):
        partial = copy.deepcopy(tiny_doc)
        partial["cases"] = {}
        assert compare(partial, tiny_doc) == 0
        assert "missing from current run" in capsys.readouterr().out


class TestDeterminismGuard:
    def test_nondeterminism_across_repeats_raises(self, monkeypatch):
        import repro.perf.suite as suite_mod

        facts = iter(
            [
                (0.01, {"digest": "aaaa", "sim_cycles": 1, "events": 1}),
                (0.01, {"digest": "bbbb", "sim_cycles": 1, "events": 1}),
            ]
        )
        monkeypatch.setattr(
            suite_mod, "_run_case_once", lambda case, engine: next(facts)
        )
        with pytest.raises(RuntimeError, match="non-deterministic"):
            suite_mod.run_suite(repeat=2, cases=TINY)
