"""The perf gate must be engine-blind.

``BENCH_perf.json`` now records which engine produced it (top-level
``engine`` key, part of the schema), but the regression gate compares
only ``cases`` and ``composite`` — so exit codes 0 / 3 (composite
regression) / 4 (digest mismatch) must be identical regardless of which
engine produced either side of the comparison.
"""

import copy

import pytest

from repro.perf.compare import (
    EXIT_DIGEST_MISMATCH,
    EXIT_REGRESSION,
    compare,
)

BASE_DOC = {
    "schema": "repro-perf/1",
    "engine": "event",
    "spin": {"mops": 10.0, "iterations": 1},
    "repeat": 2,
    "cases": {
        "libq-1c-base": {
            "digest": "aaaa", "sim_cycles": 1000, "events": 500,
            "instructions": 100, "wall_seconds": 1.0,
            "sim_cycles_per_sec": 1000.0, "events_per_sec": 500.0,
            "normalized_score": 0.5,
        },
    },
    "composite": 0.5,
}


def doc(engine, score=0.5, digest="aaaa"):
    d = copy.deepcopy(BASE_DOC)
    d["engine"] = engine
    case = d["cases"]["libq-1c-base"]
    case["normalized_score"] = score
    case["digest"] = digest
    d["composite"] = score
    return d


ENGINE_PAIRS = [
    ("event", "event"),
    ("event", "batch"),
    ("batch", "event"),
    ("batch", "batch"),
]


@pytest.mark.parametrize("cur_engine,base_engine", ENGINE_PAIRS)
class TestGateIsEngineBlind:
    def test_pass_is_engine_independent(self, cur_engine, base_engine):
        code = compare(
            doc(cur_engine), doc(base_engine), progress=lambda *a: None
        )
        assert code == 0

    def test_regression_fires_identically(self, cur_engine, base_engine):
        code = compare(
            doc(cur_engine, score=0.1),
            doc(base_engine, score=0.5),
            progress=lambda *a: None,
        )
        assert code == EXIT_REGRESSION

    def test_digest_mismatch_fires_identically(self, cur_engine, base_engine):
        """Digest mismatch wins over regression, whatever the engines."""
        code = compare(
            doc(cur_engine, score=0.1, digest="bbbb"),
            doc(base_engine, score=0.5, digest="aaaa"),
            progress=lambda *a: None,
        )
        assert code == EXIT_DIGEST_MISMATCH


def test_baseline_without_engine_key_still_compares():
    """Baselines written before the engine field existed stay valid."""
    legacy = doc("event")
    del legacy["engine"]
    assert compare(doc("batch"), legacy, progress=lambda *a: None) == 0
