"""Regression tests for per-core trace seed derivation.

The historical scheme ``seed * 16 + core`` aliased distinct
``(seed, core)`` pairs — mix seed 0's core 16 shared a trace stream with
mix seed 1's core 0 — which correlated supposedly-independent runs. The
hash-based :func:`~repro.sim.sweep.derive_trace_seed` cannot collide that
way and is process-stable (safe for cache keys and parallel workers).
"""

import pytest

import repro.sim.sweep as sweep
from repro import SystemConfig
from repro.sim.sweep import derive_trace_seed


class TestDerivation:
    def test_old_scheme_collided_new_does_not(self):
        """Pin the motivating collision: (0, 16) vs (1, 0)."""
        old = lambda seed, core: seed * 16 + core  # noqa: E731
        assert old(0, 16) == old(1, 0)
        assert derive_trace_seed(0, 16) != derive_trace_seed(1, 0)

    def test_collision_free_over_a_grid(self):
        seeds = {
            derive_trace_seed(seed, core)
            for seed in range(64)
            for core in range(16)
        }
        assert len(seeds) == 64 * 16

    def test_values_are_pinned(self):
        """Changing the derivation silently invalidates every cached mix
        result; this pin forces such a change to be deliberate."""
        assert derive_trace_seed(0, 0) == 15378838894278201442
        assert derive_trace_seed(3, 2) == 18407496779156051040

    def test_deterministic_and_non_negative(self):
        assert derive_trace_seed(7, 3) == derive_trace_seed(7, 3)
        assert derive_trace_seed(7, 3) >= 0


class _StubSystem:
    def __init__(self, config, traces):
        self.traces = traces

    def run(self, instructions, warmup_instructions, **snapshot_kwargs):
        return "stub-result"


class TestWiring:
    def test_run_mix_derives_per_core_seeds(self, monkeypatch):
        captured = []

        class Traceable:
            def trace(self, seed):
                captured.append(seed)
                return object()

        monkeypatch.setattr(sweep, "System", _StubSystem)
        monkeypatch.setattr(sweep, "_resolve", lambda w: Traceable())
        sweep.run_mix(["a", "b", "c"], SystemConfig(cores=3), seed=5)
        assert captured == [derive_trace_seed(5, i) for i in range(3)]

    def test_alone_ipcs_matches_mix_derivation(self, monkeypatch):
        captured = []

        def fake_run_workload(w, config=None, instructions=0,
                              warmup_instructions=0, seed=0):
            captured.append(seed)

            class R:
                ipc = 1.0

            return R()

        monkeypatch.setattr(sweep, "run_workload", fake_run_workload)
        sweep.alone_ipcs(["a", "b"], SystemConfig(), seed=4)
        assert captured == [derive_trace_seed(4, 0), derive_trace_seed(4, 1)]
