"""Bit-exact determinism of full-system runs.

Two invariants, both enforced in the CI matrix across Python versions:

* re-running the same (config, seed) in one process reproduces the exact
  telemetry digest — the property every hot-path optimization in this
  repo is verified against;
* the digests match ``tests/data/expected_digests.json``, committed once
  and asserted on every interpreter version CI runs, so a NumPy bit-
  stream change, dict-ordering change, or platform difference shows up
  as a test failure rather than as silently incomparable results.

If a deliberate behaviour change (new mechanism default, timing fix)
alters simulated execution, regenerate the JSON file and note why in the
commit — see docs/internals.md §8.
"""

import json
from pathlib import Path

from repro import SystemConfig, run_workload

DATA = Path(__file__).resolve().parent.parent / "data" / "expected_digests.json"

RUN = dict(instructions=2_000, warmup_instructions=500)


def run_once(mechanism):
    config = SystemConfig(cores=1, mechanism=mechanism, seed=1, telemetry=True)
    return run_workload("libq", config, **RUN)


class TestDeterminism:
    def test_identical_runs_produce_identical_digests(self):
        a = run_once("baseline")
        b = run_once("baseline")
        assert a.telemetry_digest() == b.telemetry_digest()
        assert a.cycles == b.cycles

    def test_digests_match_committed_expectations(self):
        expected = json.loads(DATA.read_text())
        assert len(expected) == 9  # the snapshot oracle suite relies on it
        for case, want in sorted(expected.items()):
            mechanism = case.removeprefix("libq-")
            result = run_once(mechanism)
            assert result.telemetry_digest() == want["digest"], mechanism
            assert result.cycles == want["cycles"], mechanism
