"""Tests for the disk-cached experiment campaign runner."""

import dataclasses

import pytest

from repro import SystemConfig
from repro.sim import Campaign
from repro.errors import ConfigError

RUN = dict(instructions=3_000, warmup_instructions=1_000)


class TestCaching:
    def test_second_run_is_a_cache_hit(self, tmp_path):
        campaign = Campaign(tmp_path)
        first = campaign.run_workload("libq", SystemConfig(), **RUN)
        second = campaign.run_workload("libq", SystemConfig(), **RUN)
        assert campaign.hits == 1 and campaign.misses == 1
        assert first.ipc == second.ipc
        assert first.total_energy_nj == second.total_energy_nj

    def test_cache_distinguishes_configs(self, tmp_path):
        campaign = Campaign(tmp_path)
        campaign.run_workload("libq", SystemConfig(), **RUN)
        campaign.run_workload(
            "libq", SystemConfig(mechanism="crow-cache"), **RUN
        )
        assert campaign.misses == 2

    def test_cache_distinguishes_seeds_and_lengths(self, tmp_path):
        campaign = Campaign(tmp_path)
        campaign.run_workload("libq", SystemConfig(), seed=0, **RUN)
        campaign.run_workload("libq", SystemConfig(), seed=1, **RUN)
        campaign.run_workload(
            "libq", SystemConfig(), seed=0,
            instructions=4_000, warmup_instructions=1_000,
        )
        assert campaign.misses == 3

    def test_cached_result_equals_fresh_run(self, tmp_path):
        from repro.sim import run_workload

        campaign = Campaign(tmp_path)
        cached = campaign.run_workload("h264-dec", SystemConfig(), **RUN)
        fresh = run_workload("h264-dec", SystemConfig(), **RUN)
        assert cached.ipc == fresh.ipc
        assert cached.cycles == fresh.cycles

    def test_mix_caching(self, tmp_path):
        campaign = Campaign(tmp_path)
        names = ["libq", "bzip2"]
        first = campaign.run_mix(
            names, SystemConfig(cores=2),
            instructions=2_000, warmup_instructions=500,
        )
        second = campaign.run_mix(
            names, SystemConfig(cores=2),
            instructions=2_000, warmup_instructions=500,
        )
        assert campaign.hits == 1
        assert first.core_ipcs == second.core_ipcs

    def test_clear(self, tmp_path):
        campaign = Campaign(tmp_path)
        campaign.run_workload("libq", SystemConfig(), **RUN)
        assert campaign.clear() == 1
        campaign.run_workload("libq", SystemConfig(), **RUN)
        assert campaign.misses == 2

    def test_config_digest_covers_every_field(self, tmp_path):
        """Changing any SystemConfig field must change the cache key."""
        from repro.sim.campaign import _config_digest

        base = SystemConfig()
        digests = {_config_digest(base)}
        variations = dict(
            cores=2,
            mechanism="crow-cache",
            density_gbit=16,
            copy_rows=4,
            llc_size_bytes=1 << 20,
            prefetcher=True,
            seed=99,
            evict_partial="restore",
        )
        for field, value in variations.items():
            changed = dataclasses.replace(base, **{field: value})
            digests.add(_config_digest(changed))
        assert len(digests) == len(variations) + 1
