"""Tests for the disk-cached experiment campaign runner."""

import dataclasses
import json
import os

import pytest

from repro import SystemConfig
from repro.sim import Campaign
from repro.sim.campaign import _jsonable, config_digest
from repro.errors import ConfigError

RUN = dict(instructions=3_000, warmup_instructions=1_000)


class TestCaching:
    def test_second_run_is_a_cache_hit(self, tmp_path):
        campaign = Campaign(tmp_path)
        first = campaign.run_workload("libq", SystemConfig(), **RUN)
        second = campaign.run_workload("libq", SystemConfig(), **RUN)
        assert campaign.hits == 1 and campaign.misses == 1
        assert first.ipc == second.ipc
        assert first.total_energy_nj == second.total_energy_nj

    def test_cache_distinguishes_configs(self, tmp_path):
        campaign = Campaign(tmp_path)
        campaign.run_workload("libq", SystemConfig(), **RUN)
        campaign.run_workload(
            "libq", SystemConfig(mechanism="crow-cache"), **RUN
        )
        assert campaign.misses == 2

    def test_cache_distinguishes_seeds_and_lengths(self, tmp_path):
        campaign = Campaign(tmp_path)
        campaign.run_workload("libq", SystemConfig(), seed=0, **RUN)
        campaign.run_workload("libq", SystemConfig(), seed=1, **RUN)
        campaign.run_workload(
            "libq", SystemConfig(), seed=0,
            instructions=4_000, warmup_instructions=1_000,
        )
        assert campaign.misses == 3

    def test_cached_result_equals_fresh_run(self, tmp_path):
        from repro.sim import run_workload

        campaign = Campaign(tmp_path)
        cached = campaign.run_workload("h264-dec", SystemConfig(), **RUN)
        fresh = run_workload("h264-dec", SystemConfig(), **RUN)
        assert cached.ipc == fresh.ipc
        assert cached.cycles == fresh.cycles

    def test_mix_caching(self, tmp_path):
        campaign = Campaign(tmp_path)
        names = ["libq", "bzip2"]
        first = campaign.run_mix(
            names, SystemConfig(cores=2),
            instructions=2_000, warmup_instructions=500,
        )
        second = campaign.run_mix(
            names, SystemConfig(cores=2),
            instructions=2_000, warmup_instructions=500,
        )
        assert campaign.hits == 1
        assert first.core_ipcs == second.core_ipcs

    def test_clear(self, tmp_path):
        campaign = Campaign(tmp_path)
        campaign.run_workload("libq", SystemConfig(), **RUN)
        assert campaign.clear() == 1
        campaign.run_workload("libq", SystemConfig(), **RUN)
        assert campaign.misses == 2

    def test_config_digest_covers_every_field(self, tmp_path):
        """Changing any SystemConfig field must change the cache key."""
        from repro.sim.campaign import _config_digest

        base = SystemConfig()
        digests = {_config_digest(base)}
        variations = dict(
            cores=2,
            mechanism="crow-cache",
            density_gbit=16,
            copy_rows=4,
            llc_size_bytes=1 << 20,
            prefetcher=True,
            seed=99,
            evict_partial="restore",
        )
        for field, value in variations.items():
            changed = dataclasses.replace(base, **{field: value})
            digests.add(_config_digest(changed))
        assert len(digests) == len(variations) + 1


@dataclasses.dataclass(frozen=True)
class _Knobs:
    depth: int
    weights: tuple
    table: dict


class _Slotted:
    """No __dict__, no custom __repr__: nothing stable to key on."""

    __slots__ = ()


class _Plain:
    def __init__(self, gain):
        self.gain = gain


class TestJsonable:
    def test_dataclass_dict_tuple_projection_is_stable(self):
        a = _Knobs(depth=2, weights=(0.5, 1.0), table={"b": 2, "a": 1})
        b = _Knobs(depth=2, weights=(0.5, 1.0), table={"a": 1, "b": 2})
        assert _jsonable(a) == _jsonable(b)
        assert json.dumps(_jsonable(a), sort_keys=True) == \
            json.dumps(_jsonable(b), sort_keys=True)
        assert _jsonable(a)["weights"] == [0.5, 1.0]

    def test_plain_objects_keyed_by_class_and_attrs(self):
        assert _jsonable(_Plain(3)) == _jsonable(_Plain(3))
        assert _jsonable(_Plain(3)) != _jsonable(_Plain(4))
        assert _jsonable(_Plain(3))["__class__"] == "_Plain"

    def test_identityless_value_raises_instead_of_poisoning_the_key(self):
        """default object.__repr__ embeds a memory address: two digests of
        the same logical config would differ between runs. Reject it."""
        with pytest.raises(ConfigError, match="no\\s+stable representation"):
            _jsonable(_Slotted())

    def test_config_digest_is_identity_free(self):
        assert config_digest(SystemConfig()) == config_digest(SystemConfig())


class TestCacheRobustness:
    def _path(self, campaign):
        return campaign.path_for("wl", ("libq",), SystemConfig(), 3_000,
                                 1_000, 0)

    def test_corrupt_entry_is_a_miss_and_gets_repaired(self, tmp_path):
        campaign = Campaign(tmp_path)
        path = self._path(campaign)
        path.write_bytes(b"torn-pickle-from-a-killed-writer")
        result = campaign.run_workload("libq", SystemConfig(), **RUN)
        assert campaign.misses == 1 and campaign.hits == 0
        assert result.ipc > 0
        # The slot was rewritten cleanly: the next read is a hit.
        campaign.run_workload("libq", SystemConfig(), **RUN)
        assert campaign.hits == 1

    def test_wrong_type_entry_is_a_miss(self, tmp_path):
        import pickle

        campaign = Campaign(tmp_path)
        path = self._path(campaign)
        path.write_bytes(pickle.dumps({"not": "a SimResult"}))
        campaign.run_workload("libq", SystemConfig(), **RUN)
        assert campaign.misses == 1

    def test_store_is_atomic_via_replace(self, tmp_path, monkeypatch):
        replaced = []
        real_replace = os.replace

        def spy(src, dst):
            replaced.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        campaign = Campaign(tmp_path)
        campaign.run_workload("libq", SystemConfig(), **RUN)
        assert len(replaced) == 1
        src, dst = replaced[0]
        assert src.endswith(".tmp") and dst.endswith(".pkl")
        # No temporary droppings survive the write.
        assert not list(tmp_path.glob("*.tmp"))

    def test_interrupted_write_leaves_no_entry(self, tmp_path, monkeypatch):
        """A writer killed before the rename must leave the cache slot
        empty (a miss), never a torn pickle."""
        campaign = Campaign(tmp_path)

        def die(src, dst):
            raise KeyboardInterrupt("killed mid-store")

        monkeypatch.setattr(os, "replace", die)
        with pytest.raises(KeyboardInterrupt):
            campaign.run_workload("libq", SystemConfig(), **RUN)
        assert not list(tmp_path.glob("*.pkl"))
        assert not list(tmp_path.glob("*.tmp"))
