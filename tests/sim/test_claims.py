"""Single-flight advisory claim tests for the Campaign disk cache."""

import json
import os
import time

from repro.sim import Campaign


def _entry(tmp_path):
    return tmp_path / "wl-libq-abc.pkl"


class TestClaims:
    def test_claim_is_exclusive(self, tmp_path):
        campaign = Campaign(tmp_path)
        entry = _entry(tmp_path)
        assert campaign.try_claim(entry) is True
        assert campaign.try_claim(entry) is False

    def test_release_frees_and_is_idempotent(self, tmp_path):
        campaign = Campaign(tmp_path)
        entry = _entry(tmp_path)
        assert campaign.try_claim(entry)
        campaign.release_claim(entry)
        campaign.release_claim(entry)  # no-op, no error
        assert campaign.try_claim(entry) is True

    def test_holder_records_pid_host_time(self, tmp_path):
        campaign = Campaign(tmp_path)
        entry = _entry(tmp_path)
        campaign.try_claim(entry)
        holder = campaign.claim_holder(entry)
        assert holder["pid"] == os.getpid()
        assert isinstance(holder["host"], str) and holder["host"]
        assert holder["time"] <= time.time()

    def test_stale_claim_is_broken_by_age(self, tmp_path):
        campaign = Campaign(tmp_path)
        entry = _entry(tmp_path)
        campaign.try_claim(entry)
        claim = campaign.claim_path(entry)
        old = time.time() - 7200
        os.utime(claim, (old, old))
        # Same-host live-pid check would keep it; age alone breaks it.
        assert campaign.try_claim(entry, stale_s=3600.0) is True

    def test_dead_holder_on_this_host_is_broken(self, tmp_path):
        campaign = Campaign(tmp_path)
        entry = _entry(tmp_path)
        campaign.try_claim(entry)
        claim = campaign.claim_path(entry)
        holder = json.loads(claim.read_text())
        # Forge a dead pid: fork a child that exits immediately.
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        holder["pid"] = pid
        claim.write_text(json.dumps(holder))
        assert campaign.try_claim(entry) is True

    def test_torn_claim_breaks_only_after_grace(self, tmp_path):
        campaign = Campaign(tmp_path)
        entry = _entry(tmp_path)
        claim = campaign.claim_path(entry)
        claim.write_text("{ torn")  # unreadable, freshly written
        assert campaign.try_claim(entry) is False
        old = time.time() - 30  # past the 5s being-written grace
        os.utime(claim, (old, old))
        assert campaign.try_claim(entry) is True

    def test_foreign_live_claim_is_respected(self, tmp_path):
        campaign = Campaign(tmp_path)
        entry = _entry(tmp_path)
        claim = campaign.claim_path(entry)
        # A live claim from another host: unknown liveness, keep it.
        claim.write_text(json.dumps(
            {"pid": 1, "host": "elsewhere", "time": time.time()}
        ))
        assert campaign.try_claim(entry) is False
