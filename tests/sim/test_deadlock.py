"""Deadlock diagnostics: a stuck simulation must say *what* is stuck."""

import pytest

from repro import System, SystemConfig
from repro.errors import ReproError


def make_system(**kwargs):
    config = SystemConfig(cores=1, mechanism="no-refresh", **kwargs)
    return System(config, [iter([])])


class TestDeadlockMessage:
    def test_exhausted_trace_deadlocks_with_diagnostics(self):
        # An empty trace can never retire the measured quota: once the
        # core drains its window every component reports IDLE and the
        # stepper must fail loudly instead of spinning.
        system = make_system()
        with pytest.raises(ReproError) as exc:
            system.run(
                instructions=100, warmup_instructions=0, prewarm_accesses=0
            )
        message = str(exc.value)
        assert "simulation deadlock at cycle" in message
        assert str(system.now) in message
        assert "core0=idle" in message
        assert "controller0=idle" in message
        assert "event-queue=idle" in message

    def test_message_renders_numeric_wake_times(self):
        # Finite wake times (a component that *is* scheduled) print as
        # numbers so the report distinguishes idle from merely waiting.
        system = make_system()
        system.cores[0].next_wake = 123
        message = system._deadlock_message()
        assert "core0=123" in message
        assert "controller0=" in message
        assert f"deadlock at cycle {system.now}" in message
