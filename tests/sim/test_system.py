"""End-to-end system tests: configuration, runner, metrics, mechanisms."""

import pytest

from repro import (
    SystemConfig,
    System,
    run_mix,
    run_workload,
    weighted_speedup,
    workload,
)
from repro.errors import ConfigError

FAST = dict(instructions=15_000, warmup_instructions=5_000)


def quick(name, mechanism="baseline", **config_kwargs):
    return run_workload(
        name, SystemConfig(mechanism=mechanism, **config_kwargs), **FAST
    )


class TestConfig:
    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(mechanism="magic")

    def test_baseline_has_no_copy_rows(self):
        geometry = SystemConfig(mechanism="baseline").resolved_geometry()
        assert geometry.copy_rows_per_subarray == 0

    def test_crow_gets_copy_rows(self):
        geometry = SystemConfig(mechanism="crow-cache", copy_rows=4)
        assert geometry.resolved_geometry().copy_rows_per_subarray == 4

    def test_salp_shrinks_subarrays(self):
        config = SystemConfig(mechanism="salp", salp_subarrays_per_bank=256)
        assert config.resolved_geometry().rows_per_subarray == 256

    def test_trace_count_must_match_cores(self):
        with pytest.raises(ConfigError):
            System(SystemConfig(cores=2), [workload("libq").trace(0)])


class TestSingleCoreRuns:
    def test_baseline_run_completes(self):
        result = quick("libq")
        assert result.ipc > 0
        assert result.cycles > 0
        assert result.total_energy_nj > 0

    def test_deterministic(self):
        a = quick("h264-dec")
        b = quick("h264-dec")
        assert a.ipc == b.ipc
        assert a.cycles == b.cycles
        assert a.total_energy_nj == b.total_energy_nj

    def test_crow_cache_improves_locality_workload(self):
        base = quick("h264-dec")
        crow = quick("h264-dec", mechanism="crow-cache")
        assert crow.crow_hit_rate is not None and crow.crow_hit_rate > 0.5
        assert crow.speedup_over(base) > 1.02

    def test_no_workload_slows_down_with_crow_cache(self):
        """Paper Section 8.1.1: no application experiences slowdown."""
        for name in ("libq", "mcf", "streaming"):
            base = quick(name)
            crow = quick(name, mechanism="crow-cache")
            assert crow.speedup_over(base) > 0.99, name

    def test_ideal_crow_cache_upper_bounds_real(self):
        real = quick("h264-dec", mechanism="crow-cache")
        ideal = quick("h264-dec", mechanism="ideal-crow-cache")
        assert ideal.ipc >= real.ipc * 0.98

    def test_refresh_disabled_is_faster_at_high_density(self):
        # Long enough to span several tREFI periods (12500 cycles each).
        long = dict(instructions=50_000, warmup_instructions=5_000)
        base = run_workload(
            "mcf", SystemConfig(mechanism="baseline", density_gbit=64), **long
        )
        none = run_workload(
            "mcf", SystemConfig(mechanism="no-refresh", density_gbit=64), **long
        )
        assert base.controller_stats["refreshes"] > 0
        assert none.ipc > base.ipc

    def test_crow_ref_extends_window(self):
        result = quick("mcf", mechanism="crow-ref")
        assert result.refresh_window_ms == 128.0

    def test_crow_ref_fallback_keeps_base_window(self):
        result = quick(
            "libq", mechanism="crow-ref",
            weak_rows_per_subarray=9,  # more than the 8 copy rows
        )
        assert result.refresh_window_ms == 64.0

    def test_combined_mechanism_runs(self):
        result = quick("h264-dec", mechanism="crow-combined")
        assert result.refresh_window_ms == 128.0
        assert result.crow_hit_rate is not None

    def test_tldram_outperforms_crow_on_hits(self):
        crow = quick("h264-dec", mechanism="crow-cache")
        tld = quick("h264-dec", mechanism="tl-dram")
        assert tld.ipc >= crow.ipc   # Figure 11: TL-DRAM-8 is faster...

    def test_salp_runs_and_keeps_buffers_open(self):
        result = quick("h264-dec", mechanism="salp", salp_open_page=True)
        assert result.ipc > 0

    def test_chargecache_runs(self):
        result = quick("h264-dec", mechanism="chargecache")
        assert result.ipc > 0

    def test_prefetcher_helps_streaming(self):
        base = quick("libq")
        pf = quick("libq", prefetcher=True)
        assert pf.ipc > base.ipc * 1.01

    def test_mpki_measured(self):
        result = quick("mcf")
        assert result.core_mpki[0] > 10


class TestMultiCore:
    def test_four_core_run(self):
        mix = ["libq", "mcf", "h264-dec", "bzip2"]
        result = run_mix(
            mix, SystemConfig(cores=4), instructions=5_000,
            warmup_instructions=2_000,
        )
        assert len(result.core_ipcs) == 4
        assert all(ipc > 0 for ipc in result.core_ipcs)

    def test_weighted_speedup_bounds(self):
        ws = weighted_speedup([0.5, 0.5], [1.0, 1.0])
        assert ws == pytest.approx(1.0)
        with pytest.raises(ConfigError):
            weighted_speedup([1.0], [0.0])

    def test_contention_reduces_per_core_ipc(self):
        alone = quick("mcf")
        shared = run_mix(
            ["mcf", "mcf", "mcf", "mcf"], SystemConfig(cores=4),
            instructions=5_000, warmup_instructions=2_000,
        )
        assert max(shared.core_ipcs) < alone.ipc


class TestMetrics:
    def test_single_core_ipc_guard(self):
        result = run_mix(
            ["libq", "libq"], SystemConfig(cores=2),
            instructions=4_000, warmup_instructions=1_000,
        )
        with pytest.raises(ConfigError):
            _ = result.ipc

    def test_energy_ratio(self):
        a = quick("libq")
        b = quick("libq")
        assert a.energy_ratio(b) == pytest.approx(1.0)


class TestFunctionalCells:
    def test_crow_cache_with_functional_cells_has_no_integrity_errors(self):
        """Run the full stack with the cell array attached: the command
        stream the controller produces must satisfy every data-integrity
        rule (safe eviction, pair activation, retention)."""
        result = run_workload(
            "h264-dec",
            SystemConfig(mechanism="crow-cache", functional_cells=True),
            instructions=4_000,
            warmup_instructions=1_000,
        )
        assert result.ipc > 0
