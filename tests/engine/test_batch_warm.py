"""Vectorized pre-warm equivalence: the batch kernel vs the scalar loop.

``BatchEngine.prewarm`` simulates the LLC's exact-LRU automaton across
all sets in parallel and allocates page frames in bulk. Its contract is
state identity: after warming, the LLC set dicts (tags, dirty bits,
LRU *key order*) and the virtual-memory state (page table, allocator
RNG position) must be byte-equal to what the scalar reference loop
produces — that state seeds the timed run, so any divergence would
surface as a digest change downstream.
"""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.trace.stream import TraceStream


def warmed_state(engine, workloads, seed, accesses, **extra):
    config = SystemConfig(
        cores=len(workloads), seed=seed, engine=engine, **extra
    )
    traces = [
        TraceStream(name, seed + core)
        for core, name in enumerate(workloads)
    ]
    system = System(config, traces)
    system.prewarm(accesses)
    return system


WORKLOAD_CASES = [
    (("libq",), 1),
    (("random",), 7),
    (("mcf",), 3),
    (("omnetpp",), 11),
    (("libq", "mcf"), 5),
    (("libq", "mcf", "stream-copy", "milc"), 2),
]


class TestWarmStateEquivalence:
    @pytest.mark.parametrize("workloads,seed", WORKLOAD_CASES)
    def test_llc_and_vm_state_identical(self, workloads, seed):
        event = warmed_state("event", workloads, seed, 30_000)
        batch = warmed_state("batch", workloads, seed, 30_000)
        assert batch.llc.state_dict() == event.llc.state_dict()
        assert batch.vm.state_dict() == event.vm.state_dict()
        # Trace cursors must agree too — the timed phase continues from
        # exactly where pre-warm stopped consuming.
        for ec, bc in zip(event.cores, batch.cores):
            assert bc.trace.state_dict() == ec.trace.state_dict()

    def test_lru_key_order_is_preserved(self):
        """Snapshot byte-identity depends on dict insertion order, not
        just set membership: keys must be LRU-first in both engines."""
        event = warmed_state("event", ("random",), 13, 50_000)
        batch = warmed_state("batch", ("random",), 13, 50_000)
        for es, bs in zip(event.llc._sets, batch.llc._sets):
            assert list(bs.items()) == list(es.items())

    def test_chunk_boundary_invariance(self):
        """Warm counts straddling the batch chunk size hit the
        multi-chunk path; state must still match the scalar loop."""
        from repro.engine.batch import _PREWARM_CHUNK as CHUNK

        for accesses in (CHUNK - 1, CHUNK, CHUNK + 1, 2 * CHUNK + 7):
            event = warmed_state("event", ("libq",), 1, accesses)
            batch = warmed_state("batch", ("libq",), 1, accesses)
            assert batch.llc.state_dict() == event.llc.state_dict()
            assert batch.vm.state_dict() == event.vm.state_dict()

    def test_stats_reset_after_warm(self):
        batch = warmed_state("batch", ("libq",), 1, 20_000)
        assert batch.llc.hits == 0
        assert batch.llc.misses == 0
        assert batch.llc.writebacks == 0

    def test_double_prewarm_falls_back_to_scalar(self):
        """A second warm sees a non-empty LLC: the vectorized kernel's
        fresh-state precondition fails and the scalar path must take
        over, keeping both engines equivalent even then."""
        event = warmed_state("event", ("libq",), 1, 10_000)
        batch = warmed_state("batch", ("libq",), 1, 10_000)
        event.prewarm(10_000)
        batch.prewarm(10_000)
        assert batch.llc.state_dict() == event.llc.state_dict()
        assert batch.vm.state_dict() == event.vm.state_dict()
