"""Cross-engine differential suite: batch must equal event, byte for byte.

The batch engine's contract is *behavioural identity*: for every oracle
mechanism in ``tests/data/expected_digests.json``, running the same
(config, seed, workload) under ``engine='batch'`` must produce

* the identical telemetry digest (and the committed oracle digest),
* an identical :class:`~repro.sim.metrics.SimResult` tree, field for
  field, and
* a clean pass under the strict conformance checker.

Engine choice is a wall-clock knob only, so it is also excluded from
every caching digest — asserted at the bottom of this module.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro import SystemConfig, run_workload
from repro.sim.campaign import config_digest, task_digest
from repro.snapshot import warmup_digest

DATA = Path(__file__).resolve().parent.parent / "data"
EXPECTED = json.loads((DATA / "expected_digests.json").read_text())

RUN = dict(instructions=2_000, warmup_instructions=500)


def run_once(mechanism, engine, **extra):
    config = SystemConfig(
        cores=1,
        mechanism=mechanism,
        seed=1,
        telemetry=True,
        engine=engine,
        **extra,
    )
    return run_workload("libq", config, **RUN)


class TestOracleEquivalence:
    @pytest.mark.parametrize("case", sorted(EXPECTED))
    def test_batch_matches_oracle_and_event(self, case):
        mechanism = case.removeprefix("libq-")
        event = run_once(mechanism, "event")
        batch = run_once(mechanism, "batch")
        want = EXPECTED[case]
        assert event.telemetry_digest() == want["digest"]
        assert batch.telemetry_digest() == want["digest"]
        assert batch.cycles == want["cycles"]
        # The whole result tree, not just the digest: every stat, every
        # energy component, every telemetry leaf.
        assert dataclasses.asdict(batch) == dataclasses.asdict(event)

    @pytest.mark.parametrize("case", sorted(EXPECTED))
    def test_batch_passes_strict_conformance(self, case):
        """The shadow checker watches the real command stream — a batch
        run completing under strict mode means the engine issued a fully
        JEDEC/CROW-conformant schedule, independent of the digest."""
        mechanism = case.removeprefix("libq-")
        result = run_once(mechanism, "batch", check=True, check_mode="strict")
        assert result.telemetry_digest() == EXPECTED[case]["digest"]


class TestMultiCoreEquivalence:
    def test_four_core_mix_is_engine_invariant(self):
        from repro.sim.sweep import run_mix

        results = {}
        for engine in ("event", "batch"):
            config = SystemConfig(
                cores=4,
                mechanism="crow-cache",
                seed=7,
                telemetry=True,
                engine=engine,
            )
            results[engine] = run_mix(
                ["libq", "mcf", "stream-copy", "milc"],
                config,
                instructions=1_500,
                warmup_instructions=300,
            )
        assert dataclasses.asdict(results["batch"]) == dataclasses.asdict(
            results["event"]
        )


class TestEngineDigestExclusion:
    def test_config_digest_ignores_engine(self):
        assert config_digest(SystemConfig(engine="batch")) == config_digest(
            SystemConfig(engine="event")
        )

    def test_warmup_digest_ignores_engine(self):
        assert warmup_digest(SystemConfig(engine="batch")) == warmup_digest(
            SystemConfig(engine="event")
        )

    def test_task_digest_ignores_engine(self):
        kwargs = dict(
            kind="workload",
            names=("libq",),
            instructions=1000,
            warmup_instructions=100,
            seed=1,
        )
        assert task_digest(
            config=SystemConfig(engine="batch"), **kwargs
        ) == task_digest(config=SystemConfig(engine="event"), **kwargs)

    def test_unknown_engine_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="engine"):
            SystemConfig(engine="warp")
