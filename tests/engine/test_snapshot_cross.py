"""Cross-engine snapshot interoperability.

Snapshots carry no engine state (the engine is a pure driver over the
system's component state, and the engine field is excluded from config
digests), so a checkpoint taken under either engine must resume under
either — and every combination must land on the uninterrupted run's
exact telemetry digest.
"""

import pytest

from repro import SystemConfig, run_workload
from repro.sim.system import System
from repro.snapshot import read_header

RUN = dict(instructions=2_000, warmup_instructions=500)


def config_for(engine, mechanism="crow-cache"):
    return SystemConfig(
        cores=1, mechanism=mechanism, seed=1, telemetry=True, engine=engine
    )


@pytest.fixture(scope="module")
def oracle_digest():
    return run_workload("libq", config_for("event"), **RUN).telemetry_digest()


class TestCrossEngineResume:
    @pytest.mark.parametrize("save_engine,resume_engine", [
        ("event", "batch"),
        ("batch", "event"),
        ("batch", "batch"),
    ])
    def test_checkpoint_resumes_across_engines(
        self, tmp_path, oracle_digest, save_engine, resume_engine
    ):
        snap = tmp_path / f"{save_engine}-to-{resume_engine}.snap"
        host = run_workload(
            "libq", config_for(save_engine), **RUN,
            snapshot_at_cycle=300, snapshot_path=snap,
        )
        # Snapshotting itself must not perturb the saving engine's run.
        assert host.telemetry_digest() == oracle_digest
        assert snap.is_file()

        resumed = System.resume(snap, engine=resume_engine)
        assert resumed.telemetry_digest() == oracle_digest

    def test_restore_applies_engine_override(self, tmp_path, oracle_digest):
        snap = tmp_path / "warm.snap"
        run_workload(
            "libq", config_for("event"), **RUN,
            snapshot_at_cycle=40, snapshot_path=snap,
        )
        system = System.restore(snap, engine="batch")
        assert system.config.engine == "batch"
        assert type(system.engine).__name__ == "BatchEngine"
        # Without the override the saved engine comes back.
        system = System.restore(snap)
        assert system.config.engine == "event"

    def test_snapshot_digest_is_engine_invariant(self, tmp_path):
        """Both engines write a checkpoint at the same cycle with the
        same config digest in the header — the bytes that gate restore
        compatibility cannot depend on the engine."""
        headers = {}
        for engine in ("event", "batch"):
            snap = tmp_path / f"{engine}.snap"
            run_workload(
                "libq", config_for(engine), **RUN,
                snapshot_at_cycle=300, snapshot_path=snap,
            )
            headers[engine] = read_header(snap)
        assert (
            headers["event"]["config_digest"]
            == headers["batch"]["config_digest"]
        )
        assert headers["event"]["cycle"] == headers["batch"]["cycle"]

    def test_warmup_phase_checkpoint_crosses_engines(
        self, tmp_path, oracle_digest
    ):
        """Cycle 40 lands inside timed warm-up; the cross-engine resume
        must replay warm-up completion plus measurement identically."""
        snap = tmp_path / "early.snap"
        run_workload(
            "libq", config_for("event"), **RUN,
            snapshot_at_cycle=40, snapshot_path=snap,
        )
        resumed = System.resume(snap, engine="batch")
        assert resumed.telemetry_digest() == oracle_digest
