"""Chunk-array trace production vs. the scalar reference generators.

The batch engine consumes traces through :meth:`ChunkTrace.take_arrays`;
record consumers use ``next()``/``take``. Both must see exactly the
record sequence the original per-record generators produced — same RNG
draw order, same values, same Python types. The reference
implementations below are verbatim copies of the pre-chunk generator
bodies.
"""

import itertools

import numpy as np
import pytest

from repro.cpu.core import TraceRecord
from repro.trace.chunks import ChunkTrace, records_to_chunk
from repro.trace.synth import (
    LINE,
    hotset_trace,
    mixed_trace,
    multistream_trace,
    random_trace,
    streaming_trace,
    strided_trace,
)

_CHUNK = 1024


def _bubbles(rng, mean, count):
    if mean <= 0:
        return np.zeros(count, dtype=np.int64)
    return rng.poisson(mean, size=count).astype(np.int64)


# ----------------------------------------------------------------------
# Reference implementations: the original scalar generators, verbatim.
# ----------------------------------------------------------------------
def ref_streaming(footprint_bytes, bubbles_mean, write_fraction,
                  base_vaddr, seed):
    rng = np.random.default_rng(seed)
    lines = footprint_bytes // LINE
    position = 0
    pc = 0x400000
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK).tolist()
        writes = (rng.random(_CHUNK) < write_fraction).tolist()
        vaddrs = (
            base_vaddr
            + (np.arange(position, position + _CHUNK) % lines) * LINE
        ).tolist()
        position += _CHUNK
        yield from map(TraceRecord, bubbles, vaddrs, writes, (pc,) * _CHUNK)


def ref_random(footprint_bytes, bubbles_mean, write_fraction,
               base_vaddr, seed):
    rng = np.random.default_rng(seed)
    lines = footprint_bytes // LINE
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK).tolist()
        targets = rng.integers(0, lines, size=_CHUNK)
        writes = (rng.random(_CHUNK) < write_fraction).tolist()
        pcs = rng.integers(0, 64, size=_CHUNK)
        vaddrs = (base_vaddr + targets * LINE).tolist()
        pc_list = (0x500000 + pcs * 4).tolist()
        yield from map(TraceRecord, bubbles, vaddrs, writes, pc_list)


def ref_strided(footprint_bytes, stride_bytes, bubbles_mean,
                write_fraction, base_vaddr, seed):
    rng = np.random.default_rng(seed)
    position = 0
    pc = 0x600000
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK).tolist()
        writes = (rng.random(_CHUNK) < write_fraction).tolist()
        vaddrs = (
            base_vaddr
            + (np.arange(position, position + _CHUNK) * stride_bytes)
            % footprint_bytes
        ).tolist()
        position += _CHUNK
        yield from map(TraceRecord, bubbles, vaddrs, writes, (pc,) * _CHUNK)


def ref_hotset(footprint_bytes, hot_bytes, hot_fraction, bubbles_mean,
               write_fraction, base_vaddr, seed):
    rng = np.random.default_rng(seed)
    hot_lines = hot_bytes // LINE
    all_lines = footprint_bytes // LINE
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK).tolist()
        hot = (rng.random(_CHUNK) < hot_fraction).tolist()
        targets = rng.integers(0, 1 << 62, size=_CHUNK).tolist()
        writes = (rng.random(_CHUNK) < write_fraction).tolist()
        run = rng.integers(2, 8, size=_CHUNK).tolist()
        i = 0
        while i < _CHUNK:
            if hot[i]:
                start = targets[i] % hot_lines
                for offset in range(run[i]):
                    line = (start + offset) % hot_lines
                    yield TraceRecord(
                        bubbles[i],
                        base_vaddr + line * LINE,
                        writes[i],
                        0x700000,
                    )
            else:
                line = targets[i] % all_lines
                yield TraceRecord(
                    bubbles[i],
                    base_vaddr + line * LINE,
                    writes[i],
                    0x700100,
                )
            i += 1


def ref_multistream(footprint_bytes, streams, bubbles_mean,
                    write_fraction, restart_period, base_vaddr, seed):
    rng = np.random.default_rng(seed)
    region_lines = footprint_bytes // LINE // streams
    positions = np.zeros(streams, dtype=np.int64)
    count = 0
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK).tolist()
        picks = rng.integers(0, streams, size=_CHUNK)
        writes = (rng.random(_CHUNK) < write_fraction).tolist()
        picks_list = picks.tolist()
        for i in range(_CHUNK):
            stream = picks_list[i]
            line = int(positions[stream]) % region_lines
            positions[stream] += 1
            count += 1
            if restart_period and count % restart_period == 0:
                positions[int(rng.integers(0, streams))] = 0
            vaddr = base_vaddr + (stream * region_lines + line) * LINE
            yield TraceRecord(
                bubbles[i], vaddr, writes[i], 0x800000 + stream * 4
            )


# Note: the scalar multistream reference above is only draw-compatible
# with the vectorized path when restart_period == 0 (both then draw
# bubbles/picks/writes per chunk and nothing else).
CASES = [
    (
        "streaming",
        lambda: streaming_trace(1 << 20, 12.0, 0.3, 0x1000, 7),
        lambda: ref_streaming(1 << 20, 12.0, 0.3, 0x1000, 7),
    ),
    (
        "streaming-nobubbles",
        lambda: streaming_trace(1 << 14, 0.0, 0.0, 0x1000, 7),
        lambda: ref_streaming(1 << 14, 0.0, 0.0, 0x1000, 7),
    ),
    (
        "random",
        lambda: random_trace(1 << 18, 3.0, 0.5, 0x2000, 11),
        lambda: ref_random(1 << 18, 3.0, 0.5, 0x2000, 11),
    ),
    (
        "strided",
        lambda: strided_trace(1 << 19, 256, 5.0, 0.1, 0x3000, 13),
        lambda: ref_strided(1 << 19, 256, 5.0, 0.1, 0x3000, 13),
    ),
    (
        "hotset",
        lambda: hotset_trace(1 << 20, 1 << 14, 0.8, 4.0, 0.2, 0x4000, 17),
        lambda: ref_hotset(1 << 20, 1 << 14, 0.8, 4.0, 0.2, 0x4000, 17),
    ),
    (
        "multistream",
        lambda: multistream_trace(1 << 20, 7, 2.0, 0.2, 0, 0x5000, 19),
        lambda: ref_multistream(1 << 20, 7, 2.0, 0.2, 0, 0x5000, 19),
    ),
    (
        "multistream-restart",
        lambda: multistream_trace(1 << 20, 5, 2.0, 0.2, 33, 0x5000, 23),
        lambda: ref_multistream(1 << 20, 5, 2.0, 0.2, 33, 0x5000, 23),
    ),
]

N = 5000


@pytest.mark.parametrize(
    "make_new,make_ref", [(c[1], c[2]) for c in CASES],
    ids=[c[0] for c in CASES],
)
def test_records_match_reference(make_new, make_ref):
    new = list(itertools.islice(make_new(), N))
    ref = list(itertools.islice(make_ref(), N))
    assert new == ref
    # Byte-identity requires plain Python types, not numpy scalars.
    for record in new[:64]:
        assert type(record[0]) is int
        assert type(record[1]) is int
        assert type(record[2]) is bool
        assert type(record[3]) is int


@pytest.mark.parametrize(
    "make_new,make_ref", [(c[1], c[2]) for c in CASES],
    ids=[c[0] for c in CASES],
)
def test_take_arrays_matches_records(make_new, make_ref):
    trace = make_new()
    assert isinstance(trace, ChunkTrace)
    # Odd sizes force mid-chunk splits and chunk-boundary straddles.
    sizes = [1, 700, 1024, 1500, 3]
    ref = make_ref()
    for size in sizes:
        vaddrs, writes = trace.take_arrays(size)
        expected = list(itertools.islice(ref, size))
        assert vaddrs.tolist() == [r[1] for r in expected]
        assert writes.tolist() == [r[2] for r in expected]
    # Interleaving record and array views continues the same stream.
    tail = trace.take(100)
    assert tail == list(itertools.islice(ref, 100))


@pytest.mark.parametrize(
    "make_new,make_ref", [(c[1], c[2]) for c in CASES],
    ids=[c[0] for c in CASES],
)
def test_skip_is_equivalent_to_reading(make_new, make_ref):
    trace = make_new()
    assert trace.skip(3333) == 3333
    ref = make_ref()
    for _ in range(3333):
        next(ref)
    assert trace.take(200) == list(itertools.islice(ref, 200))


def test_mixed_trace_matches_round_robin_reference():
    new = mixed_trace(
        [
            (streaming_trace(1 << 16, 2.0, 0.0, 0x1000, 3), 5),
            (random_trace(1 << 16, 2.0, 0.5, 0x2000, 4), 2),
            (hotset_trace(1 << 18, 1 << 12, 0.9, 2.0, 0.2, 0x4000, 5), 1),
        ]
    )
    children = [
        (ref_streaming(1 << 16, 2.0, 0.0, 0x1000, 3), 5),
        (ref_random(1 << 16, 2.0, 0.5, 0x2000, 4), 2),
        (ref_hotset(1 << 18, 1 << 12, 0.9, 2.0, 0.2, 0x4000, 5), 1),
    ]

    def ref():
        while True:
            for generator, length in children:
                for _ in range(length):
                    yield next(generator)

    assert list(itertools.islice(new, N)) == list(itertools.islice(ref(), N))


def test_mixed_trace_accepts_plain_iterators():
    # Non-ChunkTrace children compose through the records_to_chunk
    # fallback; a finite child ends the mixed stream cleanly.
    plain = iter([TraceRecord(1, 64 * i, False, 0x10) for i in range(7)])
    trace = mixed_trace([(plain, 2)])
    records = list(trace)
    assert records == [TraceRecord(1, 64 * i, False, 0x10) for i in range(7)]


def test_records_to_chunk_round_trip():
    records = [
        TraceRecord(3, 128, True, 0x40),
        TraceRecord(0, 192, False, 0x44),
    ]
    chunk = records_to_chunk(records)
    assert [c.dtype.kind for c in chunk] == ["i", "i", "b", "i"]
    assert list(ChunkTrace(iter([chunk]))) == records


def test_take_arrays_on_exhausted_stream_returns_empty():
    trace = ChunkTrace(iter([]))
    vaddrs, writes = trace.take_arrays(10)
    assert len(vaddrs) == 0 and len(writes) == 0
    assert trace.take(10) == []
    assert trace.skip(10) == 0
