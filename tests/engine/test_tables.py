"""Compiled-table validation: one source of truth, checked three ways.

* :class:`CommandTables` values equal the constants the device layer
  actually schedules with (the channel now *consumes* the tables, so
  this pins the compilation, not a parallel reimplementation);
* the per-mechanism ``timing_variants`` hook reproduces the exact
  :class:`ActTimings` objects the live mechanism instances put on the
  wire;
* compilation is cached per parameter set.
"""

import pytest

from repro.dram.commands import CommandKind
from repro.dram.timing import TimingParameters
from repro.engine.tables import (
    COMMAND_LEGALITY,
    compile_act_variants,
    compile_timing_tables,
)
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.trace.stream import TraceStream


def build_system(mechanism, **extra):
    config = SystemConfig(cores=1, mechanism=mechanism, **extra)
    return System(config, [TraceStream("libq", 1)])


class TestCommandTables:
    def test_channel_consumes_compiled_tables(self):
        system = build_system("baseline")
        timing = system.timing
        tables = compile_timing_tables(timing)
        channel = system.channels[0]
        assert channel.tables is tables
        assert channel._base_act_timings == tables.base_act
        assert channel._rd_after_rd == timing.tccd
        assert channel._rd_after_wr == timing.tcwl + timing.tbl + timing.twtr
        assert channel._wr_after_wr == timing.tccd
        assert channel._wr_after_rd == timing.tcl + timing.tbl + 2 - timing.tcwl
        assert channel._rd_data_delay == timing.tcl + timing.tbl
        assert channel._wr_done_delay == timing.tcwl + timing.tbl
        assert tables.trrd == timing.trrd
        assert tables.tfaw == timing.tfaw
        assert tables.trfc == timing.trfc

    def test_bus_cycles_charge_crow_activations_double(self):
        tables = compile_timing_tables(TimingParameters.lpddr4())
        for kind in CommandKind:
            expected = 2 if kind in (CommandKind.ACT_C, CommandKind.ACT_T) else 1
            assert tables.bus_cycles[kind] == expected

    def test_compilation_is_cached_per_parameter_set(self):
        a = TimingParameters.lpddr4()
        assert compile_timing_tables(a) is compile_timing_tables(a)
        b = a.with_refresh_window(128.0)
        assert compile_timing_tables(b) is not compile_timing_tables(a)

    def test_legality_covers_every_command_kind(self):
        assert set(COMMAND_LEGALITY) == set(CommandKind)
        with pytest.raises(TypeError):
            COMMAND_LEGALITY[CommandKind.ACT] = "open"


class TestActVariantsMatchLiveMechanisms:
    """The compiled variants must be the live objects' timing sets."""

    def variants_for(self, system):
        return compile_act_variants(
            system.config, system.timing, system.crow_timings
        )

    def test_base_act_always_present(self):
        system = build_system("baseline")
        variants = self.variants_for(system)
        assert set(variants) == {"act"}
        assert variants["act"] == system.channels[0]._base_act_timings

    def test_crow_cache_variants(self):
        system = build_system("crow-cache")
        mech = system.mechanisms[0]
        variants = self.variants_for(system)
        assert variants["act-t-full"] == mech.act_t_timings(True)
        assert variants["act-t-partial"] == mech.act_t_timings(False)
        assert variants["act-t-restore"] == mech.act_t_timings(
            False, force_full=True
        )
        assert variants["act-c"] == mech.act_c_timings()

    def test_crow_cache_variants_track_config_knobs(self):
        system = build_system(
            "crow-cache",
            allow_partial_restore=False,
            reduced_twr=False,
            act_c_early_termination=False,
        )
        mech = system.mechanisms[0]
        variants = self.variants_for(system)
        assert variants["act-t-full"] == mech.act_t_timings(True)
        assert variants["act-c"] == mech.act_c_timings()

    def test_crow_ref_remap_variant(self):
        from repro.dram.commands import ActTimings

        system = build_system("crow-ref")
        mech = system.mechanisms[0]
        variants = self.variants_for(system)
        # CrowRef constructs its safe-copy set inline from its crow
        # factors (ref.py _plan_dynamic_remap); mirror that construction.
        assert variants["act-c-remap"] == ActTimings(
            trcd=mech.crow.trcd_act_c,
            tras_full=mech.crow.tras_act_c_full,
            tras_early=mech.crow.tras_act_c_full,
            twr=mech.crow.twr_mra_full,
        )

    def test_clr_dram_variant(self):
        system = build_system("clr-dram")
        mech = system.mechanisms[0]
        variants = self.variants_for(system)
        assert variants["act-coupled"] == mech._fast

    def test_tldram_variants(self):
        system = build_system("tl-dram")
        mech = system.mechanisms[0]
        variants = self.variants_for(system)
        assert variants["act-near"] == mech._near_timings
        assert variants["act-far"] == mech._far_timings
        assert variants["act-c-copy"] == mech._copy_timings

    def test_chargecache_variant(self):
        system = build_system("chargecache")
        mech = system.mechanisms[0]
        variants = self.variants_for(system)
        assert variants["act-charged"] == mech._fast_timings

    def test_ideal_crow_variant(self):
        system = build_system("ideal-crow-cache")
        mech = system.mechanisms[0]
        variants = self.variants_for(system)
        assert variants["act-t-ideal"] == mech._timings

    def test_combined_union(self):
        system = build_system("crow-combined")
        variants = self.variants_for(system)
        assert {"act", "act-t-full", "act-t-partial", "act-t-restore",
                "act-c", "act-c-remap"} == set(variants)
