"""End-to-end cluster tests over real localhost sockets.

The acceptance bar: a fleet produces results *byte-identical* to the
serial ``Campaign``, through worker SIGKILL, lease stealing and
coordinator crash + journal-replay restart.
"""

import asyncio
import json
import os
import pickle
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import SystemConfig
from repro.cluster import (
    CampaignState,
    ClusterWorker,
    Coordinator,
    ResultStore,
    fetch_status,
)
from repro.cluster import coordinator as coordinator_module
from repro.cluster.protocol import pack_bytes
from repro.cluster.state import DONE, FAILED, PENDING
from repro.exec import RunJournal, TaskSpec, read_journal
from repro.sim import Campaign

RUN = dict(instructions=2_000, warmup_instructions=500)
MECHS = ("baseline", "chargecache", "crow-cache")
DATA = Path(__file__).resolve().parent.parent / "data"


def _specs(mechs=MECHS):
    return [
        TaskSpec.workload(
            "libq", SystemConfig(mechanism=m, telemetry=True), **RUN
        )
        for m in mechs
    ]


@pytest.fixture(autouse=True)
def fast_drain(monkeypatch):
    """Shrink the post-campaign drain grace; tests need no niceties."""
    monkeypatch.setattr(coordinator_module, "_DRAIN_GRACE_S", 0.1)


class TestFleetParity:
    def test_two_workers_match_serial_campaign_and_oracle(self, tmp_path):
        specs = _specs()
        journal_path = tmp_path / "journal.jsonl"

        async def go():
            journal = RunJournal(journal_path)
            state = CampaignState(lease_timeout_s=10.0, journal=journal)
            for spec in specs:
                state.add_task(spec.to_wire())
            store = ResultStore(tmp_path / "store")
            coordinator = Coordinator(state, store, exit_when_done=True)
            await coordinator.start()
            workers = [
                asyncio.create_task(
                    ClusterWorker(
                        "127.0.0.1", coordinator.port,
                        tmp_path / f"w{i}", worker_id=f"w{i}",
                    ).run()
                )
                for i in range(2)
            ]
            snapshot = await coordinator.serve()
            delivered = await asyncio.gather(*workers)
            journal.close()
            return snapshot, delivered

        snapshot, delivered = asyncio.run(go())
        assert snapshot["done"] == len(specs)
        assert snapshot["failed"] == 0
        assert sum(delivered) == len(specs)

        # Store files are byte-identical to a serial Campaign's cache.
        serial = Campaign(tmp_path / "serial")
        for spec in specs:
            serial.run_workload("libq", spec.config, **RUN)
            fleet_bytes = (
                tmp_path / "store" / spec.cache_filename()
            ).read_bytes()
            serial_bytes = (
                tmp_path / "serial" / spec.cache_filename()
            ).read_bytes()
            assert fleet_bytes == serial_bytes

        # Journaled telemetry digests match the cross-version oracle.
        expected = json.loads(
            (DATA / "expected_digests.json").read_text()
        )
        digests = {
            event["task"]: event["telemetry_digest"]
            for event in read_journal(journal_path)
            if event["event"] == "cluster_task_done"
        }
        for mech in MECHS:
            assert (
                digests[f"wl:libq@{mech}#0"]
                == expected[f"libq-{mech}"]["digest"]
            )

    def test_prepopulated_store_completes_without_workers(self, tmp_path):
        """prune_against_store adopts cached results; no simulation."""
        specs = _specs()
        serial = Campaign(tmp_path / "store")
        for spec in specs:
            serial.run_workload("libq", spec.config, **RUN)

        async def go():
            state = CampaignState(lease_timeout_s=10.0)
            for spec in specs:
                state.add_task(spec.to_wire())
            store = ResultStore(tmp_path / "store")
            coordinator = Coordinator(state, store, exit_when_done=True)
            pruned = coordinator.prune_against_store()
            await coordinator.start()
            snapshot = await coordinator.serve()
            return pruned, snapshot

        pruned, snapshot = asyncio.run(go())
        assert pruned == len(specs)
        assert snapshot["done"] == len(specs)

    def test_fleet_status_over_the_wire(self, tmp_path):
        async def go():
            state = CampaignState(lease_timeout_s=10.0)
            for spec in _specs():
                state.add_task(spec.to_wire())
            coordinator = Coordinator(
                state, ResultStore(tmp_path / "store")
            )
            await coordinator.start()
            try:
                status = await fetch_status("127.0.0.1", coordinator.port)
            finally:
                await coordinator.close()
            return status

        status = asyncio.run(go())
        assert status.total == len(MECHS)
        assert status.done == 0
        assert status.payload["pending"] == len(MECHS)
        assert "store" in status.payload
        rendered = status.render()
        assert "campaign" in rendered and "fleet" in rendered


class TestWorkerDeath:
    def test_sigkill_mid_lease_recovers_with_identical_digest(
        self, tmp_path
    ):
        """The tentpole failure mode: a worker is SIGKILLed holding a
        lease; its task is re-leased to a survivor that resumes from the
        victim's checkpoint, and the result is byte-identical to a
        serial run."""
        spec = TaskSpec.workload(
            "libq",
            SystemConfig(mechanism="crow-cache", telemetry=True),
            instructions=30_000, warmup_instructions=2_000,
        )
        checkpoints = tmp_path / "ckpt"
        checkpoints.mkdir()
        journal_path = tmp_path / "journal.jsonl"

        async def go():
            journal = RunJournal(journal_path)
            state = CampaignState(lease_timeout_s=2.0, journal=journal)
            state.add_task(spec.to_wire())
            store = ResultStore(tmp_path / "store")
            coordinator = Coordinator(state, store, exit_when_done=True)
            await coordinator.start()

            env = dict(os.environ)
            src = Path(__file__).resolve().parents[2] / "src"
            env["PYTHONPATH"] = os.pathsep.join(
                [str(src)] + env.get("PYTHONPATH", "").split(os.pathsep)
            )
            victim = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "cluster", "work",
                    "--connect", f"127.0.0.1:{coordinator.port}",
                    "--store", str(tmp_path / "victim-store"),
                    "--id", "victim",
                    "--checkpoint-dir", str(checkpoints),
                    "--checkpoint-every", "500",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            try:
                # Kill only once the victim has provably checkpointed
                # mid-simulation.
                deadline = time.monotonic() + 90.0
                while (
                    not list(checkpoints.glob("*.ckpt"))
                    and time.monotonic() < deadline
                ):
                    await asyncio.sleep(0.05)
                assert list(checkpoints.glob("*.ckpt")), (
                    "victim never wrote a checkpoint"
                )
                victim.kill()
            finally:
                if victim.poll() is None:
                    victim.kill()
                victim.wait()

            survivor = ClusterWorker(
                "127.0.0.1", coordinator.port, tmp_path / "surv-store",
                worker_id="survivor",
                checkpoint_dir=checkpoints, checkpoint_every=500,
            )
            worker_task = asyncio.create_task(survivor.run())
            snapshot = await coordinator.serve()
            await worker_task
            journal.close()
            return snapshot, store

        snapshot, store = asyncio.run(go())
        assert snapshot["done"] == 1 and snapshot["failed"] == 0
        assert snapshot["steals"] == 1  # survivor took the victim's task

        events = [e["event"] for e in read_journal(journal_path)]
        assert "lease_released" in events or "lease_expired" in events

        reference = spec.run()  # uninterrupted serial reference
        recovered = store.get_result(spec)
        assert recovered == reference
        assert (
            recovered.telemetry_digest() == reference.telemetry_digest()
        )


class TestCoordinatorRestart:
    def test_journal_replay_resumes_campaign(self, tmp_path):
        specs = _specs()
        journal_path = tmp_path / "journal.jsonl"
        store = ResultStore(tmp_path / "store")

        # -- session 1: one task done, one in flight, then "SIGKILL" --
        # (no clean campaign end is journaled, like a dead process)
        journal = RunJournal(journal_path)
        state = CampaignState(lease_timeout_s=10.0, journal=journal)
        for spec in specs:
            state.add_task(spec.to_wire())
        first = store.put_result(specs[0], specs[0].run())
        lease = state.next_lease("w1")
        state.complete(
            lease["lease_id"],
            telemetry_digest=first.telemetry_digest(), duration_s=1.0,
        )
        state.next_lease("w1")  # in flight at crash time
        journal.close()

        # -- session 2: replay, prune, finish with one worker ---------
        async def go():
            journal2 = RunJournal(journal_path)
            events = read_journal(journal_path)
            state2 = CampaignState.replay(
                events, lease_timeout_s=10.0, journal=journal2
            )
            counts = state2.counts()
            assert counts[DONE] == 1
            assert counts[PENDING] == 2  # the dead lease came back
            assert not state2.leases
            coordinator = Coordinator(
                state2, store, exit_when_done=True
            )
            assert coordinator.prune_against_store() == 0
            await coordinator.start()
            worker = asyncio.create_task(
                ClusterWorker(
                    "127.0.0.1", coordinator.port, tmp_path / "w",
                    worker_id="w2",
                ).run()
            )
            snapshot = await coordinator.serve()
            await worker
            journal2.close()
            return snapshot

        snapshot = asyncio.run(go())
        assert snapshot["done"] == len(specs)
        assert snapshot["failed"] == 0
        for spec in specs:
            assert store.get_result(spec) is not None

    def test_journal_done_without_store_entry_is_recomputed(
        self, tmp_path
    ):
        """A done-mark in the journal does not stand without bytes."""
        spec = _specs()[0]
        journal_path = tmp_path / "journal.jsonl"
        journal = RunJournal(journal_path)
        state = CampaignState(journal=journal)
        state.add_task(spec.to_wire())
        state.complete(None, digest=spec.digest(), worker="w1",
                       telemetry_digest="feedbeefdeadc0de")
        journal.close()

        async def go():
            events = read_journal(journal_path)
            state2 = CampaignState.replay(events)
            assert state2.counts()[DONE] == 1
            store = ResultStore(tmp_path / "store")  # empty!
            coordinator = Coordinator(state2, store, exit_when_done=True)
            coordinator.prune_against_store()
            assert state2.counts()[PENDING] == 1  # re-queued
            await coordinator.start()
            worker = asyncio.create_task(
                ClusterWorker(
                    "127.0.0.1", coordinator.port, tmp_path / "w",
                    worker_id="w1",
                ).run()
            )
            snapshot = await coordinator.serve()
            await worker
            return snapshot, store

        snapshot, store = asyncio.run(go())
        assert snapshot["done"] == 1
        result = store.get_result(spec)
        assert result is not None
        assert result.telemetry_digest() != "feedbeefdeadc0de"


class TestStoreConflict:
    def test_conflicting_delivery_is_fatal_and_structured(self, tmp_path):
        """A result whose telemetry digest contradicts the cached copy
        is a broken-determinism alarm: structured error, fatal failure,
        cached bytes untouched."""
        spec, other = _specs(("baseline", "crow-cache"))
        good = spec.run()
        bad = other.run()  # a different simulation's result

        events = []
        store = ResultStore(tmp_path / "store")
        store.put_result(spec, good)
        before = store.result_path(spec).read_bytes()
        state = CampaignState(
            journal=lambda e, f: events.append({"event": e, **f})
        )
        state.add_task(spec.to_wire())
        coordinator = Coordinator(state, store)
        lease = state.next_lease("w1")
        reply = coordinator._dispatch(
            {
                "type": "result",
                "lease_id": lease["lease_id"],
                "digest": spec.digest(),
                "worker": "w1",
                "payload": pack_bytes(pickle.dumps(bad)),
            },
            "w1",
        )
        assert reply["type"] == "error"
        assert reply["code"] == "store_conflict"
        assert state.tasks[spec.digest()].state == FAILED  # fatal
        assert store.result_path(spec).read_bytes() == before
        assert any(e["event"] == "store_conflict" for e in events)
        assert any(
            e["event"] == "cluster_task_exhausted" and e["fatal"]
            for e in events
        )
