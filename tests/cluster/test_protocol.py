"""Wire-protocol tests: framing, torn streams, task wire forms."""

import asyncio
import pickle

import pytest

from repro import SystemConfig
from repro.cluster import protocol
from repro.cluster.protocol import (
    decode_frame,
    encode_frame,
    pack_bytes,
    read_frame,
    unpack_bytes,
)
from repro.errors import ClusterError, ConfigError
from repro.exec import TaskSpec


class TestFrames:
    def test_round_trip(self):
        message = {"type": "hello", "worker": "w1", "pid": 42,
                   "nested": {"a": [1, 2, 3]}}
        assert decode_frame(encode_frame(message)) == message

    def test_frame_needs_a_type(self):
        with pytest.raises(ClusterError):
            encode_frame({"worker": "w1"})
        with pytest.raises(ClusterError):
            encode_frame("not a dict")

    def test_truncated_header_rejected(self):
        with pytest.raises(ClusterError):
            decode_frame(b"\x00\x00")

    def test_length_body_mismatch_rejected(self):
        data = encode_frame({"type": "ack"})
        with pytest.raises(ClusterError):
            decode_frame(data[:-1])

    def test_non_json_body_rejected(self):
        body = b"\xff\xfe not json"
        data = len(body).to_bytes(4, "big") + body
        with pytest.raises(ClusterError):
            decode_frame(data)

    def test_oversized_frame_rejected(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
        with pytest.raises(ClusterError):
            encode_frame({"type": "x", "pad": "y" * 64})

    def test_pack_bytes_round_trip(self):
        blob = bytes(range(256))
        assert unpack_bytes(pack_bytes(blob)) == blob

    def test_unpack_rejects_garbage(self):
        with pytest.raises(ClusterError):
            unpack_bytes("!!! not base64 !!!")


class TestStreamFraming:
    """read_frame over real asyncio streams."""

    def _pipe_read(self, payload: bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(payload)
            reader.feed_eof()
            frames = []
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                frames.append(frame)
            return frames

        return asyncio.run(go())

    def test_multiple_frames_one_stream(self):
        data = encode_frame({"type": "a"}) + encode_frame({"type": "b"})
        assert [f["type"] for f in self._pipe_read(data)] == ["a", "b"]

    def test_clean_eof_returns_none(self):
        assert self._pipe_read(b"") == []

    def test_torn_header_raises(self):
        with pytest.raises(ClusterError, match="torn header"):
            self._pipe_read(b"\x00\x00")

    def test_torn_body_raises(self):
        data = encode_frame({"type": "ack"})
        with pytest.raises(ClusterError, match="torn body"):
            self._pipe_read(data[:-2])

    def test_oversized_announcement_raises(self):
        header = (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ClusterError, match="ceiling"):
            self._pipe_read(header)


class TestTaskWire:
    def _spec(self):
        return TaskSpec.workload(
            "libq", SystemConfig(mechanism="crow-cache", telemetry=True),
            instructions=2_000, warmup_instructions=500,
        )

    def test_round_trip_preserves_identity(self):
        spec = self._spec()
        wire = spec.to_wire()
        back = TaskSpec.from_wire(wire)
        # Identity is content-addressed: the digest IS the contract.
        assert back.digest() == spec.digest() == wire["digest"]
        assert back.cache_filename() == spec.cache_filename()
        assert back.names == spec.names and back.kind == spec.kind
        assert back.config.mechanism == spec.config.mechanism
        assert wire["label"] == spec.label

    def test_wire_is_json_safe(self):
        import json

        json.dumps(self._spec().to_wire())

    def test_digest_mismatch_rejected(self):
        wire = self._spec().to_wire()
        wire["digest"] = "0" * 24
        with pytest.raises(ConfigError, match="digest mismatch"):
            TaskSpec.from_wire(wire)

    def test_non_spec_payload_rejected(self):
        wire = self._spec().to_wire()
        wire["spec"] = pack_bytes(pickle.dumps({"not": "a spec"}))
        with pytest.raises(ConfigError, match="not a TaskSpec"):
            TaskSpec.from_wire(wire)

    def test_garbage_payload_rejected(self):
        wire = self._spec().to_wire()
        wire["spec"] = "AAAA"
        with pytest.raises(ConfigError, match="undecodable"):
            TaskSpec.from_wire(wire)
