"""CampaignState tests: leases, expiry, steals, retries, replay.

All timing here runs on a fake clock — no sleeping, fully
deterministic.
"""

from repro import SystemConfig
from repro.cluster import CampaignState
from repro.cluster.state import DONE, FAILED, LEASED, PENDING
from repro.exec import TaskSpec


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _wire(mechanism="baseline", name="libq"):
    spec = TaskSpec.workload(
        name, SystemConfig(mechanism=mechanism, telemetry=True),
        instructions=2_000, warmup_instructions=500,
    )
    return spec.to_wire()


def _state(clock=None, journal=None, **kwargs):
    kwargs.setdefault("lease_timeout_s", 10.0)
    return CampaignState(
        clock=clock if clock is not None else FakeClock(),
        journal=journal, **kwargs,
    )


class TestLeases:
    def test_grant_marks_leased_and_payload_is_complete(self):
        state = _state()
        wire = _wire()
        state.add_task(wire)
        lease = state.next_lease("w1")
        assert lease["task"] == wire
        assert lease["attempt"] == 1
        assert lease["lease_timeout_s"] == 10.0
        entry = state.tasks[wire["digest"]]
        assert entry.state == LEASED and entry.worker == "w1"
        assert state.next_lease("w2") is None  # nothing else pending

    def test_duplicate_add_is_ignored(self):
        state = _state()
        wire = _wire()
        assert state.add_task(wire) is True
        assert state.add_task(dict(wire)) is False
        assert len(state.tasks) == 1

    def test_heartbeat_renews_and_carries_progress(self):
        clock = FakeClock()
        state = _state(clock)
        state.add_task(_wire())
        lease = state.next_lease("w1")
        clock.advance(8.0)
        assert state.heartbeat(
            lease["lease_id"], {"checkpoint_cycle": 123}
        )
        clock.advance(8.0)  # 16s since grant, 8s since heartbeat
        assert state.expire_stale() == []
        live = state.leases[lease["lease_id"]]
        assert live.progress == {"checkpoint_cycle": 123}

    def test_heartbeat_of_revoked_lease_returns_false(self):
        state = _state()
        state.add_task(_wire())
        lease = state.next_lease("w1")
        state.worker_left("w1")
        assert state.heartbeat(lease["lease_id"]) is False


class TestStaleHeartbeatRevocation:
    def test_stale_lease_is_revoked_and_requeued(self):
        clock = FakeClock()
        events = []
        state = _state(clock, journal=lambda e, f: events.append((e, f)))
        wire = _wire()
        state.add_task(wire)
        lease = state.next_lease("w1")
        clock.advance(10.1)
        assert state.expire_stale() == [wire["digest"]]
        assert state.expired == 1
        assert lease["lease_id"] not in state.leases
        entry = state.tasks[wire["digest"]]
        assert entry.state == PENDING
        assert entry.last_worker == "w1"
        assert any(e == "lease_expired" for e, _ in events)

    def test_regrant_to_other_worker_counts_as_steal(self):
        clock = FakeClock()
        state = _state(clock)
        wire = _wire()
        state.add_task(wire)
        state.next_lease("w1")
        clock.advance(10.1)
        state.expire_stale()
        release = state.next_lease("w2")
        assert release["attempt"] == 1  # expiry is not a failed attempt
        assert state.steals == 1

    def test_regrant_to_same_worker_is_not_a_steal(self):
        clock = FakeClock()
        state = _state(clock)
        state.add_task(_wire())
        state.next_lease("w1")
        clock.advance(10.1)
        state.expire_stale()
        assert state.next_lease("w1") is not None
        assert state.steals == 0

    def test_fresh_lease_not_revoked(self):
        clock = FakeClock()
        state = _state(clock)
        state.add_task(_wire())
        state.next_lease("w1")
        clock.advance(9.9)
        assert state.expire_stale() == []


class TestOutcomes:
    def test_complete_via_lease(self):
        state = _state()
        wire = _wire()
        state.add_task(wire)
        state.worker_joined("w1")
        lease = state.next_lease("w1")
        assert state.complete(
            lease["lease_id"], telemetry_digest="abcd", duration_s=1.5
        )
        entry = state.tasks[wire["digest"]]
        assert entry.state == DONE
        assert entry.telemetry_digest == "abcd"
        assert state.workers["w1"].done == 1
        assert state.finished

    def test_late_result_after_revocation_is_accepted(self):
        clock = FakeClock()
        state = _state(clock)
        wire = _wire()
        state.add_task(wire)
        lease = state.next_lease("w1")
        clock.advance(10.1)
        state.expire_stale()
        # w1 finishes anyway and delivers under its dead lease id.
        assert state.complete(
            lease["lease_id"], digest=wire["digest"], worker="w1",
            telemetry_digest="abcd",
        )
        assert state.tasks[wire["digest"]].state == DONE
        assert state.late_results == 1

    def test_double_delivery_is_idempotent(self):
        state = _state()
        wire = _wire()
        state.add_task(wire)
        lease = state.next_lease("w1")
        assert state.complete(lease["lease_id"])
        assert not state.complete(None, digest=wire["digest"])

    def test_retry_until_exhausted(self):
        events = []
        state = _state(
            journal=lambda e, f: events.append((e, f)), max_attempts=2
        )
        wire = _wire()
        state.add_task(wire)
        lease = state.next_lease("w1")
        assert state.fail(lease["lease_id"], error="boom") is True
        assert state.retries == 1
        assert state.tasks[wire["digest"]].state == PENDING
        lease = state.next_lease("w1")
        assert lease["attempt"] == 2
        assert state.fail(lease["lease_id"], error="boom again") is False
        entry = state.tasks[wire["digest"]]
        assert entry.state == FAILED and entry.error == "boom again"
        assert state.finished
        names = [e for e, _ in events]
        assert "cluster_task_retry" in names
        assert "cluster_task_exhausted" in names

    def test_fatal_failure_skips_retries(self):
        state = _state(max_attempts=3)
        wire = _wire()
        state.add_task(wire)
        lease = state.next_lease("w1")
        assert state.fail(
            lease["lease_id"], error="digest conflict", fatal=True
        ) is False
        assert state.tasks[wire["digest"]].state == FAILED

    def test_worker_loss_requeues_all_its_leases(self):
        state = _state()
        for mech in ("baseline", "crow-cache"):
            state.add_task(_wire(mech))
        state.worker_joined("w1")
        assert state.next_lease("w1") and state.next_lease("w1")
        assert state.worker_left("w1") == 2
        assert state.counts()[PENDING] == 2
        assert not state.workers["w1"].connected


class TestSnapshot:
    def test_snapshot_shape(self):
        clock = FakeClock()
        state = _state(clock)
        for mech in ("baseline", "crow-cache", "salp"):
            state.add_task(_wire(mech))
        state.worker_joined("w1", {"pid": 7})
        lease = state.next_lease("w1")
        state.heartbeat(lease["lease_id"], {"checkpoint_cycle": 50})
        state.complete(None, digest=_wire("crow-cache")["digest"],
                       worker="w1", duration_s=2.0)
        snap = state.snapshot()
        assert snap["total"] == 3
        assert snap["done"] == 1
        assert snap["leased"] == 1
        assert snap["pending"] == 1
        assert snap["eta_s"] is not None
        (w,) = snap["workers"]
        assert w["worker"] == "w1" and w["connected"]
        (row,) = w["leases"]
        assert row["progress"] == {"checkpoint_cycle": 50}

    def test_eta_scales_with_fleet_size(self):
        state = _state()
        for mech in ("baseline", "crow-cache", "salp", "chargecache"):
            state.add_task(_wire(mech))
        state.worker_joined("w1")
        state.worker_joined("w2")
        lease = state.next_lease("w1")
        state.complete(lease["lease_id"], duration_s=10.0)
        # 3 remaining * 10s mean / 2 connected workers
        assert state.eta_s() == 15.0


class TestReplay:
    def test_replay_restores_durable_facts_only(self):
        events = []
        state = _state(journal=lambda e, f: events.append(
            {"event": e, **f}
        ))
        wires = [_wire(m) for m in
                 ("baseline", "crow-cache", "salp", "chargecache")]
        for wire in wires:
            state.add_task(wire)
        # done, failed, retried, and still-leased tasks
        lease = state.next_lease("w1")
        state.complete(lease["lease_id"], telemetry_digest="d0")
        lease = state.next_lease("w1")
        state.fail(lease["lease_id"], error="x", fatal=True)
        lease = state.next_lease("w1")
        state.fail(lease["lease_id"], error="flaky")  # requeued, 1 attempt
        state.next_lease("w1")  # leased at crash time

        replayed = CampaignState.replay(events, clock=FakeClock())
        assert len(replayed.tasks) == 4
        counts = replayed.counts()
        assert counts[DONE] == 1 and counts[FAILED] == 1
        assert counts[PENDING] == 2  # leases died with the process
        assert counts[LEASED] == 0
        assert not replayed.leases
        retried = replayed.tasks[wires[2]["digest"]]
        assert retried.attempts == 1  # consumed attempts survive

    def test_replayed_wire_is_executable(self):
        events = []
        state = _state(journal=lambda e, f: events.append(
            {"event": e, **f}
        ))
        wire = _wire()
        state.add_task(wire)
        replayed = CampaignState.replay(events, clock=FakeClock())
        spec = TaskSpec.from_wire(replayed.tasks[wire["digest"]].wire)
        assert spec.digest() == wire["digest"]

    def test_replay_tolerates_foreign_events(self):
        events = [
            {"event": "campaign_start", "total": 3},
            {"event": "task_telemetry", "digest": "zz"},
            {"event": "cluster_task_done", "digest": "unknown"},
        ]
        replayed = CampaignState.replay(events, clock=FakeClock())
        assert not replayed.tasks
