"""ResultStore tests: conflicts, verbatim bytes, warm images, claims."""

import pickle

import pytest

from repro import SystemConfig
from repro.cluster import ResultStore
from repro.errors import ClusterError, StoreMismatchError
from repro.exec import TaskSpec

RUN = dict(instructions=2_000, warmup_instructions=500)


def _spec(mechanism="baseline"):
    return TaskSpec.workload(
        "libq", SystemConfig(mechanism=mechanism, telemetry=True), **RUN
    )


@pytest.fixture(scope="module")
def result():
    return _spec().run()


@pytest.fixture(scope="module")
def other_result():
    return _spec("crow-cache").run()


class TestResults:
    def test_round_trip(self, tmp_path, result):
        store = ResultStore(tmp_path)
        spec = _spec()
        assert store.get_result(spec) is None
        store.put_result(spec, result)
        assert store.get_result(spec) == result
        assert store.result_path(spec).name == spec.cache_filename()

    def test_cache_layout_matches_serial_campaign(self, tmp_path, result):
        """A cluster store directory IS a Campaign cache directory."""
        from repro.sim import Campaign

        store = ResultStore(tmp_path)
        spec = _spec()
        store.put_result(spec, result)
        campaign = Campaign(tmp_path)
        cached = campaign.run_workload("libq", spec.config, **RUN)
        assert cached == result
        assert campaign.hits == 1 and campaign.misses == 0

    def test_matching_redelivery_keeps_first_bytes(self, tmp_path, result):
        store = ResultStore(tmp_path)
        spec = _spec()
        store.put_result(spec, result)
        before = store.result_path(spec).read_bytes()
        returned = store.put_result(spec, pickle.loads(before))
        assert returned == result
        assert store.result_path(spec).read_bytes() == before

    def test_conflicting_delivery_raises_and_preserves(
        self, tmp_path, result, other_result
    ):
        store = ResultStore(tmp_path)
        spec = _spec()
        store.put_result(spec, result)
        before = store.result_path(spec).read_bytes()
        with pytest.raises(StoreMismatchError) as info:
            store.put_result(spec, other_result)
        assert info.value.task_digest == spec.digest()
        assert info.value.cached == result.telemetry_digest()
        assert info.value.computed == other_result.telemetry_digest()
        assert store.conflicts == 1
        assert store.result_path(spec).read_bytes() == before

    def test_put_bytes_stores_wire_payload_verbatim(
        self, tmp_path, result
    ):
        store = ResultStore(tmp_path)
        spec = _spec()
        payload = pickle.dumps(result)
        store.put_result_bytes(spec, payload)
        assert store.result_path(spec).read_bytes() == payload
        assert store.get_result_bytes(spec) == payload

    def test_put_bytes_conflict_checked(
        self, tmp_path, result, other_result
    ):
        store = ResultStore(tmp_path)
        spec = _spec()
        store.put_result(spec, result)
        with pytest.raises(StoreMismatchError):
            store.put_result_bytes(spec, pickle.dumps(other_result))

    def test_put_bytes_rejects_garbage(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ClusterError, match="undecodable"):
            store.put_result_bytes(_spec(), b"not a pickle")
        with pytest.raises(ClusterError, match="SimResult"):
            store.put_result_bytes(_spec(), pickle.dumps([1, 2]))

    def test_non_result_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ClusterError):
            store.put_result(_spec(), {"ipc": 1.0})


class TestWarmImages:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get_warm_bytes("abc.warm") is None
        path = store.put_warm_bytes("abc.warm", b"payload")
        assert path == store.warm_path("abc.warm")
        assert store.get_warm_bytes("abc.warm") == b"payload"

    def test_existing_image_not_overwritten(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_warm_bytes("abc.warm", b"first")
        store.put_warm_bytes("abc.warm", b"second")
        assert store.get_warm_bytes("abc.warm") == b"first"

    @pytest.mark.parametrize(
        "name",
        ["../escape", "a/b.warm", "", "..", ".", "a b.warm", "a\x00b"],
    )
    def test_illegal_names_rejected(self, tmp_path, name):
        store = ResultStore(tmp_path)
        with pytest.raises(ClusterError, match="illegal"):
            store.warm_path(name)


class TestSingleFlight:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        claim = store.claim(spec)
        assert claim is not None
        assert store.claim(spec) is None
        claim.release()
        with store.claim(spec) as second:
            assert second is not None
        assert store.claim(spec) is not None  # context released it

    def test_wait_for_sees_foreign_result(self, tmp_path, result):
        store = ResultStore(tmp_path)
        spec = _spec()
        foreign = store.claim(spec)
        polls = []

        def sleep(seconds):
            polls.append(seconds)
            # The foreign computer finishes on the second poll.
            if len(polls) == 2:
                store.campaign.store(store.result_path(spec), result)

        got = store.wait_for(spec, timeout_s=5.0, sleep=sleep)
        assert got == result
        assert len(polls) >= 2
        foreign.release()

    def test_wait_for_gives_up_when_claim_vanishes(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        claim = store.claim(spec)

        def sleep(seconds):
            claim.release()  # holder dies without a result

        assert store.wait_for(spec, timeout_s=5.0, sleep=sleep) is None

    def test_wait_for_times_out(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        claim = store.claim(spec)
        now = [0.0]

        def clock():
            return now[0]

        def sleep(seconds):
            now[0] += seconds

        assert store.wait_for(
            spec, timeout_s=1.0, poll_s=0.3, clock=clock, sleep=sleep
        ) is None
        claim.release()
