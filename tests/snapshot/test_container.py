"""The snapshot container format: framing, versioning, fail-closed reads.

Every rejection path must raise the structured :class:`SnapshotError`
(never a bare ``pickle``/``zlib``/``struct`` exception): resumable
campaigns catch ``ReproError`` to decide "discard the checkpoint and
start over", so an unstructured error would abort the campaign instead.
"""

import struct

import pytest

from repro.errors import ReproError, SnapshotError
from repro.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    read_header,
    read_snapshot,
    write_snapshot,
)

HEADER = {"kind": "test", "cycle": 42}
PAYLOAD = {"state": [1, 2, 3], "nested": {"a": (4, 5)}}


@pytest.fixture
def snap(tmp_path):
    path = tmp_path / "s.snap"
    write_snapshot(path, HEADER, PAYLOAD)
    return path


class TestRoundTrip:
    def test_read_returns_header_and_payload(self, snap):
        header, payload = read_snapshot(snap)
        assert payload == PAYLOAD
        assert header["kind"] == "test"
        assert header["cycle"] == 42

    def test_version_is_stamped_not_supplied(self, snap, tmp_path):
        assert read_header(snap)["format_version"] == FORMAT_VERSION
        with pytest.raises(SnapshotError, match="reserved"):
            write_snapshot(
                tmp_path / "bad.snap", {"format_version": 9}, PAYLOAD
            )

    def test_read_header_skips_payload(self, snap):
        """Header parse must succeed even when the payload is torn —
        that is what makes ``snapshot inspect`` and the runner's
        ``task_resumed`` probe cheap."""
        blob = snap.read_bytes()
        snap.write_bytes(blob[: len(blob) - 8])  # tear the trailer
        assert read_header(snap)["cycle"] == 42
        with pytest.raises(SnapshotError):
            read_snapshot(snap)

    def test_write_is_atomic_no_tmp_left_behind(self, snap, tmp_path):
        assert list(tmp_path.iterdir()) == [snap]


class TestFailClosed:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="no such snapshot"):
            read_snapshot(tmp_path / "absent.snap")
        with pytest.raises(SnapshotError, match="no such snapshot"):
            read_header(tmp_path / "absent.snap")

    def test_bad_magic(self, snap):
        blob = snap.read_bytes()
        snap.write_bytes(b"NOTASNAP" + blob[len(MAGIC):])
        with pytest.raises(SnapshotError, match="bad magic"):
            read_header(snap)
        with pytest.raises(SnapshotError):  # digest breaks first here
            read_snapshot(snap)

    def test_unsupported_future_version(self, snap):
        blob = bytearray(snap.read_bytes())
        blob[len(MAGIC):len(MAGIC) + 4] = struct.pack(
            ">I", FORMAT_VERSION + 1
        )
        snap.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="not supported"):
            read_header(snap)
        with pytest.raises(SnapshotError):
            read_snapshot(snap)

    def test_flipped_payload_byte_fails_digest_check(self, snap):
        blob = bytearray(snap.read_bytes())
        blob[-40] ^= 0xFF  # inside the compressed payload
        snap.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="corrupt"):
            read_snapshot(snap)

    def test_truncation_everywhere(self, snap):
        """Cutting the file at any point must raise SnapshotError."""
        blob = snap.read_bytes()
        for cut in (0, 4, len(MAGIC) + 2, len(blob) // 2, len(blob) - 1):
            snap.write_bytes(blob[:cut])
            with pytest.raises(SnapshotError):
                read_snapshot(snap)

    def test_snapshot_error_is_a_repro_error(self):
        assert issubclass(SnapshotError, ReproError)
