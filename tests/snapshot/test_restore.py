"""Restore-then-run equivalence: the snapshot subsystem's correctness bar.

The tentpole property: a run snapshotted at an arbitrary cycle and
resumed — in this process or another — produces a telemetry digest
byte-identical to the uninterrupted run. Asserted here against every
oracle case in ``tests/data/expected_digests.json``, with the
conformance checker attached, and across the warm-image fork path.
"""

import gc
import json
from pathlib import Path

import pytest

from repro import SystemConfig, run_workload
from repro.errors import ConfigError, ReproError, SnapshotError
from repro.sim.system import System
from repro.snapshot import build_warm_image, read_header, warmup_digest

DATA = Path(__file__).resolve().parent.parent / "data"
EXPECTED = json.loads((DATA / "expected_digests.json").read_text())

RUN = dict(instructions=2_000, warmup_instructions=500)


def config_for(mechanism, **extra):
    base = dict(cores=1, mechanism=mechanism, seed=1, telemetry=True)
    base.update(extra)
    return SystemConfig(**base)


class TestRestoreThenRun:
    @pytest.mark.parametrize("case", sorted(EXPECTED))
    def test_resumed_digest_matches_oracle(self, case, tmp_path):
        """Snapshot mid-measurement, resume, compare against the
        committed oracle digest — byte-identical or the subsystem is
        perturbing simulated execution."""
        mechanism = case.removeprefix("libq-")
        snap = tmp_path / "mid.snap"
        straight = run_workload(
            "libq", config_for(mechanism), **RUN,
            snapshot_at_cycle=300, snapshot_path=snap,
        )
        want = EXPECTED[case]
        assert straight.telemetry_digest() == want["digest"]
        assert snap.is_file()

        resumed = System.resume(snap)
        assert resumed.telemetry_digest() == want["digest"]
        assert resumed.cycles == want["cycles"]

    def test_snapshot_during_warmup_resumes_identically(self, tmp_path):
        """Cycle 40 lands in the timed-warmup phase: the resumed run
        must replay the rest of warmup, reset stats, then measure."""
        snap = tmp_path / "warmup.snap"
        straight = run_workload(
            "libq", config_for("crow-cache"), **RUN,
            snapshot_at_cycle=40, snapshot_path=snap,
        )
        assert read_header(snap)["phase"] == "warmup"
        resumed = System.resume(snap)
        assert resumed.telemetry_digest() == straight.telemetry_digest()

    def test_strict_conformance_passes_on_resumed_run(self, tmp_path):
        """repro.check strict mode raises on the first protocol
        violation — a resumed run completing under it means the restored
        DRAM/controller state is protocol-consistent, not just
        digest-consistent."""
        config = config_for(
            "crow-combined", check=True, check_mode="strict"
        )
        snap = tmp_path / "checked.snap"
        straight = run_workload(
            "libq", config, **RUN,
            snapshot_at_cycle=300, snapshot_path=snap,
        )
        resumed = System.resume(snap)
        assert resumed.telemetry_digest() == straight.telemetry_digest()

    def test_checkpoint_chain_resumes_and_cleans_up(self, tmp_path):
        """Periodic checkpointing: kill-points at every cadence multiple
        must all resume to the same digest, and a completed run must
        delete its checkpoint."""
        straight = run_workload("libq", config_for("salp"), **RUN)
        ck = tmp_path / "run.ckpt"
        run_workload(
            "libq", config_for("salp"), **RUN,
            snapshot_at_cycle=200, snapshot_path=ck,
        )
        resumed = System.resume(ck, checkpoint_every=150)
        assert resumed.telemetry_digest() == straight.telemetry_digest()
        # resume() itself checkpoints to the same file and must clean up
        assert not ck.is_file()


class TestCompatibilityGates:
    def test_config_mismatch_rejected_both_directions(self, tmp_path):
        a, b = config_for("baseline"), config_for("crow-cache")
        snap_a = tmp_path / "a.snap"
        snap_b = tmp_path / "b.snap"
        run_workload("libq", a, **RUN,
                     snapshot_at_cycle=300, snapshot_path=snap_a)
        run_workload("libq", b, **RUN,
                     snapshot_at_cycle=300, snapshot_path=snap_b)
        with pytest.raises(ConfigError, match="digest"):
            System.restore(snap_a, config=b)
        with pytest.raises(ConfigError, match="digest"):
            System.restore(snap_b, config=a)
        # the matching config is accepted in both directions
        assert System.restore(snap_a, config=a).now == 300
        assert System.restore(snap_b, config=b).now == 300

    @pytest.fixture(scope="class")
    def warm_image(self, tmp_path_factory):
        """One baseline-built warm image, shared across the class."""
        image = tmp_path_factory.mktemp("warm") / "w.warm"
        build_warm_image(image, ("libq",), config_for("baseline"))
        return image

    def test_warm_image_rejects_incompatible_config(self, warm_image):
        other = config_for("baseline", seed=7)
        digest = read_header(warm_image)["warmup_digest"]
        assert warmup_digest(other) != digest
        with pytest.raises(ConfigError):
            run_workload("libq", other, **RUN, warm_image=warm_image)

    def test_warm_image_is_mechanism_invariant(self, warm_image):
        """One warm image built under baseline forks into any mechanism
        variant with digests equal to cold runs — the property
        ParallelCampaign.run_forked rests on."""
        for mechanism in ("crow-ref", "chargecache"):
            cold = run_workload("libq", config_for(mechanism), **RUN)
            forked = run_workload(
                "libq", config_for(mechanism), **RUN,
                warm_image=warm_image,
            )
            assert (
                forked.telemetry_digest() == cold.telemetry_digest()
            ), mechanism

    def test_resume_requires_a_resumable_snapshot(self, warm_image):
        with pytest.raises(SnapshotError):
            System.resume(warm_image)


class TestRunGuards:
    def test_snapshot_kwargs_must_pair(self):
        with pytest.raises(ConfigError, match="together"):
            run_workload("libq", config_for("baseline"), **RUN,
                         snapshot_at_cycle=100)
        with pytest.raises(ConfigError, match="together"):
            run_workload("libq", config_for("baseline"), **RUN,
                         snapshot_path="x.snap")

    def test_gc_reenabled_when_run_raises_midway(self):
        """run() disables the generational GC for the hot loop; an
        exception escaping mid-run (here: max_cycles exhausted during
        warmup) must re-enable it on the way out."""
        from repro.trace.stream import TraceStream

        system = System(config_for("baseline"), [TraceStream("libq", 0)])
        assert gc.isenabled()
        with pytest.raises(ReproError, match="max_cycles"):
            system.run(2_000, 500, max_cycles=10, prewarm_accesses=1_000)
        assert gc.isenabled()
