"""Property-based round-trip law for Ramulator trace file I/O.

The file format merges an eligible write into the preceding read's
writeback column and splits it back out on read; the law these
properties pin down is that ``read(write(records))`` recovers the exact
``(bubbles, vaddr, is_write)`` sequence for *every* record mix — reads,
standalone writes, merged writebacks, zero-bubble runs — not just the
hand-picked cases in ``test_fileio.py``. Runs under the fixed-seed
``ci`` hypothesis profile in CI (see ``tests/conftest.py``).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.core import TraceRecord
from repro.trace.fileio import (
    read_ramulator_trace,
    take,
    write_ramulator_trace,
)

# Cache-line-ish addresses keep the generated traces realistic; the
# format itself does not care about alignment.
_records = st.builds(
    TraceRecord,
    st.integers(min_value=0, max_value=10_000),          # bubbles
    st.integers(min_value=0, max_value=(1 << 48) - 64),  # vaddr
    st.booleans(),                                       # is_write
    st.just(0),                                          # pc (not in format)
)


def _essence(records):
    return [(r.bubbles, r.vaddr, r.is_write) for r in records]


@given(st.lists(_records, max_size=64))
def test_round_trip_recovers_exact_sequence(tmp_path_factory, records):
    path = tmp_path_factory.mktemp("trace") / "trace.txt"
    write_ramulator_trace(path, records)
    assert _essence(read_ramulator_trace(path)) == _essence(records)


@given(st.lists(_records, min_size=1, max_size=16),
       st.integers(min_value=2, max_value=5))
def test_looped_read_repeats_the_sequence(tmp_path_factory, records, repeats):
    path = tmp_path_factory.mktemp("trace") / "trace.txt"
    write_ramulator_trace(path, records)
    period = _essence(read_ramulator_trace(path))
    looped = take(read_ramulator_trace(path, loop=True),
                  len(period) * repeats)
    assert _essence(looped) == period * repeats


@given(st.lists(_records, max_size=64), st.integers(0, 32))
def test_max_records_is_a_prefix(tmp_path_factory, records, limit):
    # Truncated writes still round-trip: the first ``limit`` *lines*
    # decode to a prefix of the full record sequence (a merged
    # read+writeback line carries two records, so compare prefixes).
    path = tmp_path_factory.mktemp("trace") / "trace.txt"
    write_ramulator_trace(path, records, max_records=limit)
    truncated = _essence(read_ramulator_trace(path))
    assert truncated == _essence(records)[: len(truncated)]
