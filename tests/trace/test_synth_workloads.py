"""Tests for trace generators, the workload suite, and mix construction."""

import itertools

import pytest

from repro.errors import ConfigError
from repro.trace import (
    MIX_GROUPS,
    WORKLOADS,
    build_mix,
    build_mix_group,
    workload,
    workloads_by_class,
)
from repro.trace.synth import (
    hotset_trace,
    mixed_trace,
    multistream_trace,
    random_trace,
    streaming_trace,
    strided_trace,
)
from repro.units import MIB


def take(generator, n):
    return list(itertools.islice(generator, n))


class TestGenerators:
    def test_streaming_is_sequential(self):
        records = take(streaming_trace(1 * MIB, seed=1), 100)
        addresses = [r.vaddr for r in records]
        assert addresses == sorted(addresses)
        assert addresses[1] - addresses[0] == 64

    def test_streaming_wraps_around(self):
        lines = 1 * MIB // 64
        records = take(streaming_trace(1 * MIB, seed=1), lines + 10)
        assert records[lines].vaddr == records[0].vaddr

    def test_random_stays_in_footprint(self):
        records = take(random_trace(1 * MIB, base_vaddr=0, seed=2), 500)
        assert all(0 <= r.vaddr < 1 * MIB for r in records)

    def test_strided_stride(self):
        records = take(strided_trace(1 * MIB, stride_bytes=256, seed=3), 10)
        deltas = {records[i + 1].vaddr - records[i].vaddr for i in range(9)}
        assert deltas == {256}

    def test_strided_rejects_sub_line_stride(self):
        with pytest.raises(ConfigError):
            next(strided_trace(1 * MIB, stride_bytes=32))

    def test_hotset_concentrates_accesses(self):
        records = take(
            hotset_trace(4 * MIB, hot_bytes=64 * 1024, hot_fraction=0.9,
                         base_vaddr=0, seed=4),
            2000,
        )
        in_hot = sum(1 for r in records if r.vaddr < 64 * 1024)
        assert in_hot / len(records) > 0.8

    def test_multistream_interleaves_sequential_streams(self):
        records = take(
            multistream_trace(4 * MIB, streams=4, base_vaddr=0, seed=5), 2000
        )
        region = 4 * MIB // 4
        # Within each stream's region, addresses advance sequentially.
        for stream in range(4):
            addrs = [r.vaddr for r in records
                     if stream * region <= r.vaddr < (stream + 1) * region]
            assert addrs == sorted(addrs)
            assert len(addrs) > 100

    def test_multistream_distinct_pcs(self):
        records = take(multistream_trace(4 * MIB, streams=4, seed=5), 200)
        assert len({r.pc for r in records}) == 4

    def test_mixed_alternates_phases(self):
        generator = mixed_trace([
            (streaming_trace(1 * MIB, base_vaddr=0, seed=1), 3),
            (streaming_trace(1 * MIB, base_vaddr=1 << 30, seed=1), 2),
        ])
        records = take(generator, 10)
        assert [r.vaddr >= 1 << 30 for r in records] == [
            False, False, False, True, True,
            False, False, False, True, True,
        ]

    def test_deterministic_given_seed(self):
        a = take(random_trace(1 * MIB, seed=7), 50)
        b = take(random_trace(1 * MIB, seed=7), 50)
        assert a == b

    def test_bubbles_respect_mean(self):
        records = take(streaming_trace(1 * MIB, bubbles_mean=30.0, seed=1), 3000)
        mean = sum(r.bubbles for r in records) / len(records)
        assert mean == pytest.approx(30.0, rel=0.1)


class TestWorkloadSuite:
    def test_suite_size_and_classes(self):
        """The suite matches the paper's 44-application count."""
        assert len(WORKLOADS) == 44
        for cls in ("L", "M", "H"):
            assert len(workloads_by_class(cls)) >= 10

    def test_paper_microbenchmarks_present(self):
        assert "random" in WORKLOADS
        assert "streaming" in WORKLOADS

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigError):
            workload("quake3")

    def test_traces_are_fresh_iterators(self):
        w = workload("libq")
        first = take(w.trace(0), 5)
        second = take(w.trace(0), 5)
        assert first == second

    def test_seed_changes_trace(self):
        w = workload("mcf")
        assert take(w.trace(0), 20) != take(w.trace(1), 20)

    def test_all_workloads_yield_records(self):
        for w in WORKLOADS.values():
            records = take(w.trace(0), 5)
            assert len(records) == 5
            assert all(r.bubbles >= 0 and r.vaddr >= 0 for r in records)


class TestMixes:
    def test_groups_cover_paper_signatures(self):
        assert "LLHH" in MIX_GROUPS and "HHHH" in MIX_GROUPS
        assert len(MIX_GROUPS) == 8

    def test_mix_respects_signature(self):
        mix = build_mix("LLHH", seed=3)
        assert [w.expected_class for w in mix] == ["L", "L", "H", "H"]

    def test_mix_group_size(self):
        group = build_mix_group("HHHH", mixes=5, seed=1)
        assert len(group) == 5

    def test_mixes_differ_within_group(self):
        group = build_mix_group("MMHH", mixes=10, seed=2)
        names = {tuple(w.name for w in mix) for mix in group}
        assert len(names) > 1

    def test_deterministic(self):
        a = [w.name for w in build_mix("HHHH", seed=5)]
        b = [w.name for w in build_mix("HHHH", seed=5)]
        assert a == b

    def test_invalid_signature(self):
        with pytest.raises(ConfigError):
            build_mix("LLX")
