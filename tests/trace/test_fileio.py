"""Tests for Ramulator-format trace file I/O."""

import itertools

import pytest

from repro.cpu.core import TraceRecord
from repro.errors import ConfigError
from repro.trace.fileio import read_ramulator_trace, take, write_ramulator_trace


class TestWrite:
    def test_reads_only(self, tmp_path):
        path = tmp_path / "trace.txt"
        records = [TraceRecord(5, 0x1000, False, 0),
                   TraceRecord(7, 0x2000, False, 0)]
        lines = write_ramulator_trace(path, records)
        assert lines == 2
        assert path.read_text() == "5 0x1000\n7 0x2000\n"

    def test_write_attaches_as_writeback_column(self, tmp_path):
        path = tmp_path / "trace.txt"
        records = [TraceRecord(5, 0x1000, False, 0),
                   TraceRecord(0, 0x2000, True, 0)]
        write_ramulator_trace(path, records)
        assert path.read_text() == "5 0x1000 0x2000\n"

    def test_standalone_write(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_ramulator_trace(path, [TraceRecord(3, 0x3000, True, 0)])
        assert path.read_text() == "3 0x3000 0x3000\n"

    def test_max_records(self, tmp_path):
        path = tmp_path / "trace.txt"
        records = [TraceRecord(1, i * 64, False, 0) for i in range(100)]
        write_ramulator_trace(path, records, max_records=10)
        assert len(path.read_text().splitlines()) == 10


class TestRead:
    def test_round_trip_reads(self, tmp_path):
        path = tmp_path / "trace.txt"
        original = [TraceRecord(5, 0x1000, False, 0),
                    TraceRecord(7, 0x2040, False, 0)]
        write_ramulator_trace(path, original)
        loaded = list(read_ramulator_trace(path))
        assert [(r.bubbles, r.vaddr, r.is_write) for r in loaded] == [
            (5, 0x1000, False), (7, 0x2040, False)
        ]

    def test_writeback_column_becomes_write_record(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("5 0x1000 0x2000\n")
        loaded = list(read_ramulator_trace(path))
        assert len(loaded) == 2
        assert not loaded[0].is_write and loaded[0].vaddr == 0x1000
        assert loaded[1].is_write and loaded[1].vaddr == 0x2000

    def test_decimal_and_hex_addresses(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1 4096\n2 0x2000\n")
        loaded = list(read_ramulator_trace(path))
        assert [r.vaddr for r in loaded] == [4096, 0x2000]

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n1 0x40\n")
        assert len(list(read_ramulator_trace(path))) == 1

    def test_loop_repeats(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1 0x40\n")
        repeated = take(read_ramulator_trace(path, loop=True), 5)
        assert len(repeated) == 5
        assert all(r.vaddr == 0x40 for r in repeated)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1 0x40 0x80 0xC0\n")
        with pytest.raises(ConfigError):
            list(read_ramulator_trace(path))

    def test_negative_bubbles_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("-1 0x40\n")
        with pytest.raises(ConfigError):
            list(read_ramulator_trace(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            list(read_ramulator_trace(tmp_path / "nope.txt"))


class TestEndToEnd:
    def test_exported_workload_runs_through_simulator(self, tmp_path):
        """Export a synthetic workload, reload it, and simulate it."""
        from repro import SystemConfig, System, workload

        path = tmp_path / "libq.trace"
        write_ramulator_trace(path, workload("libq").trace(0),
                              max_records=4000)
        system = System(
            SystemConfig(), [read_ramulator_trace(path, loop=True)]
        )
        result = system.run(
            instructions=3_000, warmup_instructions=500,
            prewarm_accesses=1_000,
        )
        assert result.ipc > 0
