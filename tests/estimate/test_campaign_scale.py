"""Campaign energy estimation is O(distinct configs), not O(tasks).

Every simulated task needs the per-config energy-coefficient set, but
the set only depends on the DRAM configuration — so a campaign over N
tasks and K distinct configs must hit an estimator backend exactly K
times, and a warm record cache must bring a *new process* to zero
backend calls. These tests drive the real campaign machinery (serial
in-process, so the default arbiter's counters are observable) and pin
both bounds.
"""

import pytest

from repro import SystemConfig
from repro.estimate import EstimatorArbiter, RecordCache
from repro.estimate.runtime import (
    reset_default_arbiter,
    set_default_arbiter,
)
from repro.exec import ParallelCampaign, TaskSpec

RUN = dict(instructions=2_000, warmup_instructions=500)

WORKLOADS = ("libq", "h264-dec", "bzip2")
DENSITIES = (8, 16)


@pytest.fixture()
def scoped_arbiter():
    """Install a counter-observable default arbiter, restore after."""
    installed = []

    def install(arbiter):
        set_default_arbiter(arbiter)
        installed.append(arbiter)
        return arbiter

    try:
        yield install
    finally:
        reset_default_arbiter()


def _specs():
    return [
        TaskSpec.workload(
            name, SystemConfig(density_gbit=density), **RUN
        )
        for density in DENSITIES
        for name in WORKLOADS
    ]


def test_backend_calls_scale_with_distinct_configs(
    tmp_path, scoped_arbiter
):
    arbiter = scoped_arbiter(
        EstimatorArbiter(cache=RecordCache(tmp_path / "records"))
    )
    outcomes = ParallelCampaign(tmp_path / "campaign", jobs=1).run(_specs())
    assert all(outcome.ok for outcome in outcomes)
    assert len(outcomes) == len(WORKLOADS) * len(DENSITIES)
    # Six tasks, two distinct DRAM configs: exactly two backend calls.
    assert arbiter.backend_calls == len(DENSITIES)
    assert arbiter.served_from_cache == 0


def test_warm_record_cache_means_zero_backend_calls(
    tmp_path, scoped_arbiter
):
    records = tmp_path / "records"
    scoped_arbiter(EstimatorArbiter(cache=RecordCache(records)))
    ParallelCampaign(tmp_path / "cold", jobs=1).run(_specs())

    # A fresh arbiter over the same record directory models a new
    # process: empty in-process memo, warm disk. The campaign directory
    # differs so every task truly re-simulates.
    warm = scoped_arbiter(EstimatorArbiter(cache=RecordCache(records)))
    outcomes = ParallelCampaign(tmp_path / "warm", jobs=1).run(_specs())
    assert all(outcome.ok for outcome in outcomes)
    assert warm.backend_calls == 0
    assert warm.served_from_cache == len(DENSITIES)


def test_cacheless_default_still_memoizes_per_process(
    tmp_path, scoped_arbiter
):
    arbiter = scoped_arbiter(EstimatorArbiter())
    outcomes = ParallelCampaign(tmp_path / "campaign", jobs=1).run(_specs())
    assert all(outcome.ok for outcome in outcomes)
    assert arbiter.backend_calls == len(DENSITIES)
