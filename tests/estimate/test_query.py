"""EstimateQuery / AccuracyEstimation / Estimation value semantics."""

import math

import pytest

from repro.dram.timing import TimingParameters
from repro.energy import IddCurrents
from repro.errors import ConfigError
from repro.estimate import AccuracyEstimation, EstimateQuery, Estimation


def test_query_digest_is_content_addressed():
    a = EstimateQuery("row-decoder", "area", {"rows": 512})
    b = EstimateQuery("row-decoder", "area", {"rows": 512})
    c = EstimateQuery("row-decoder", "area", {"rows": 8})
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()
    assert a.label == "row-decoder/area"


def test_query_digest_covers_dataclass_attributes():
    base = EstimateQuery(
        "dram-channel", "energy-coefficients",
        {"timing": TimingParameters.lpddr4(8),
         "currents": IddCurrents.lpddr4(8)},
    )
    denser = EstimateQuery(
        "dram-channel", "energy-coefficients",
        {"timing": TimingParameters.lpddr4(8),
         "currents": IddCurrents.lpddr4(32)},
    )
    assert base.digest() != denser.digest()


def test_query_attribute_order_does_not_change_digest():
    a = EstimateQuery("c", "a", {"x": 1, "y": 2})
    b = EstimateQuery("c", "a", {"y": 2, "x": 1})
    assert a.digest() == b.digest()


def test_query_rejects_empty_component_and_action():
    with pytest.raises(ConfigError):
        EstimateQuery("", "area")
    with pytest.raises(ConfigError):
        EstimateQuery("row-decoder", "")


def test_query_rejects_unkeyable_attributes_at_digest_time():
    class Opaque:
        __slots__ = ()

    query = EstimateQuery("c", "a", {"thing": Opaque()})
    with pytest.raises(ConfigError, match="stable representation"):
        query.digest()


def test_accuracy_range_enforced():
    assert AccuracyEstimation(70.0).supported
    assert not AccuracyEstimation(0.0, "nope").supported
    for bad in (-1.0, 101.0, math.nan, math.inf):
        with pytest.raises(ConfigError):
            AccuracyEstimation(bad)


def test_estimation_rejects_non_finite_values():
    with pytest.raises(ConfigError, match="non-finite"):
        Estimation(value=math.nan, unit="nJ", accuracy_percent=50.0)
    with pytest.raises(ConfigError, match="non-finite"):
        Estimation(
            value={"act_nj": math.inf}, unit="nJ", accuracy_percent=50.0
        )


def test_estimation_scalar_vs_mapping_access():
    scalar = Estimation(value=1.5, unit="nJ", accuracy_percent=50.0)
    mapping = Estimation(
        value={"a": 1.0}, unit="nJ", accuracy_percent=50.0
    )
    assert scalar.scalar() == 1.5
    assert mapping.mapping() == {"a": 1.0}
    with pytest.raises(ConfigError):
        scalar.mapping()
    with pytest.raises(ConfigError):
        mapping.scalar()


def test_estimation_payload_round_trip_is_bit_exact():
    original = Estimation(
        value={"act_nj": 1.9979574999999996, "cycle_ns": 0.625},
        unit="nJ",
        accuracy_percent=90.0,
        backend="idd-reference",
        notes=("a", "b"),
    )
    rebuilt = Estimation.from_payload(original.to_payload())
    assert rebuilt == original
    for key, value in original.mapping().items():
        assert math.copysign(1, rebuilt.mapping()[key]) == math.copysign(
            1, value
        )
        assert rebuilt.mapping()[key].hex() == value.hex()


def test_estimation_from_malformed_payload():
    with pytest.raises(ConfigError, match="malformed"):
        Estimation.from_payload({"unit": "nJ"})
