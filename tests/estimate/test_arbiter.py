"""Arbitration: accuracy ranking, tie-breaks, structured refusals."""

import pytest

from repro.dram.timing import TimingParameters
from repro.energy import IddCurrents
from repro.errors import ConfigError, EstimateError
from repro.estimate import EstimateQuery, EstimatorArbiter
from repro.estimate.runtime import (
    activation_power_query,
    channel_energy_query,
    decoder_area_query,
)


def _energy_query():
    return channel_energy_query(
        TimingParameters.lpddr4(8), IddCurrents.lpddr4(8)
    )


def test_most_accurate_backend_wins():
    arbiter = EstimatorArbiter()
    plugin, accuracy = arbiter.select(_energy_query())
    assert plugin.name == "idd-reference"
    assert accuracy.percent == 90.0


def test_rankings_are_sorted_best_first_with_stable_ties():
    arbiter = EstimatorArbiter()
    ranked = arbiter.rankings(_energy_query())
    percents = [accuracy.percent for _, accuracy in ranked]
    assert percents == sorted(percents, reverse=True)
    # Both zero-accuracy backends keep registration order (stable sort).
    zeros = [p.name for p, a in ranked if a.percent == 0.0]
    assert zeros == ["circuit-reference", "exotic-memory"]


def test_decoder_area_tie_prefers_reference_backend():
    # circuit-reference (95) beats cacti-analytical (70) outright; with
    # a names subset reversing registration order the ranking is still
    # by accuracy, not list position.
    arbiter = EstimatorArbiter(
        names=("cacti-analytical", "circuit-reference")
    )
    plugin, _ = arbiter.select(decoder_area_query(512))
    assert plugin.name == "circuit-reference"


def test_unsupported_query_raises_structured_error():
    arbiter = EstimatorArbiter()
    query = EstimateQuery("quantum-foam", "entropy", {})
    with pytest.raises(EstimateError) as excinfo:
        arbiter.estimate(query)
    error = excinfo.value
    assert error.query is query
    assert len(error.reasons) == 4
    assert "no registered estimator supports quantum-foam/entropy" in str(
        error
    )


def test_unknown_backend_name_is_config_error_not_arbitration_miss():
    arbiter = EstimatorArbiter(names=("no-such-backend",))
    with pytest.raises(ConfigError, match="unknown estimator"):
        arbiter.estimate(decoder_area_query(8))


def test_backend_stamp_is_authoritative():
    arbiter = EstimatorArbiter()
    estimation = arbiter.estimate(activation_power_query(2))
    assert estimation.backend == "circuit-reference"
    assert arbiter.backend_calls == 1


def test_explain_marks_exactly_one_selected_row():
    arbiter = EstimatorArbiter()
    rows = arbiter.explain(_energy_query())
    assert [row["backend"] for row in rows if row["selected"]] == [
        "idd-reference"
    ]
    assert all(row["reason"] for row in rows if not row["selected"])


def test_explain_with_no_capable_backend_selects_nothing():
    arbiter = EstimatorArbiter()
    rows = arbiter.explain(EstimateQuery("quantum-foam", "entropy", {}))
    assert not any(row["selected"] for row in rows)


def test_restricted_arbiter_exercises_the_analytical_backend():
    reference = EstimatorArbiter().estimate(_energy_query())
    analytical = EstimatorArbiter(names=("cacti-analytical",)).estimate(
        _energy_query()
    )
    assert analytical.backend == "cacti-analytical"
    assert analytical.accuracy_percent < reference.accuracy_percent
    # Same schema, genuinely different numbers: arbitration matters.
    assert set(analytical.mapping()) == set(reference.mapping())
    assert (
        analytical.mapping()["act_nj"] != reference.mapping()["act_nj"]
    )


def test_exotic_backend_answers_memory_array_queries():
    arbiter = EstimatorArbiter()
    query = EstimateQuery(
        "memory-array", "read-energy",
        {"technology": "cryo-cmos-sram", "bits": 1024},
    )
    estimation = arbiter.estimate(query)
    assert estimation.backend == "exotic-memory"
    assert estimation.scalar() > 0.0


def test_exotic_backend_refuses_unknown_technology_with_known_list():
    arbiter = EstimatorArbiter()
    query = EstimateQuery(
        "memory-array", "read-energy",
        {"technology": "bubble-memory", "bits": 1024},
    )
    with pytest.raises(EstimateError, match="cryo-cmos-sram"):
        arbiter.estimate(query)
