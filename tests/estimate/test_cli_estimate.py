"""CLI surface of the estimator framework (``python -m repro estimate``)."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.circuit.area import DecoderAreaModel
from repro.estimate import EstimatorArbiter, RecordCache
from repro.estimate.runtime import (
    reset_default_arbiter,
    set_default_arbiter,
)


@pytest.fixture(autouse=True)
def fresh_default_arbiter():
    reset_default_arbiter()
    yield
    reset_default_arbiter()


class TestParser:
    def test_estimate_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate"])

    def test_explain_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "explain", "warp-core"])


class TestCommands:
    def test_backends_listing(self, capsys, tmp_path):
        report = tmp_path / "backends.json"
        assert main(["estimate", "backends", "--json", str(report)]) == 0
        out = capsys.readouterr().out
        for name in ("idd-reference", "circuit-reference",
                     "cacti-analytical", "exotic-memory"):
            assert name in out
        payload = json.loads(report.read_text())
        assert [b["name"] for b in payload["backends"]][0] == (
            "idd-reference"
        )

    def test_energy_defaults_to_reference_backend(self, capsys):
        assert main(["estimate", "energy", "--density", "8"]) == 0
        out = capsys.readouterr().out
        assert "backend: idd-reference" in out
        assert "act_nj" in out and "idd2n_ma" in out

    def test_energy_backend_restriction(self, capsys):
        assert main([
            "estimate", "energy", "--density", "8",
            "--backend", "cacti-analytical",
        ]) == 0
        assert "backend: cacti-analytical" in capsys.readouterr().out

    def test_energy_reports_record_cache_transitions(self, capsys, tmp_path):
        set_default_arbiter(
            EstimatorArbiter(cache=RecordCache(tmp_path / "records"))
        )
        assert main(["estimate", "energy", "--density", "8"]) == 0
        assert "record cache: miss (record stored)" in (
            capsys.readouterr().out
        )
        # A "new process": fresh arbiter and memo over the warm directory.
        set_default_arbiter(
            EstimatorArbiter(cache=RecordCache(tmp_path / "records"))
        )
        assert main(["estimate", "energy", "--density", "8"]) == 0
        assert "record cache: hit" in capsys.readouterr().out

    def test_area_matches_direct_model(self, capsys):
        assert main(["estimate", "area", "--copy-rows", "8"]) == 0
        out = capsys.readouterr().out
        model = DecoderAreaModel()
        assert "backend: circuit-reference" in out
        assert f"{model.crow_chip_overhead(8):.2%}" in out
        assert f"{model.decoder_area_um2(8):.4f}" in out

    def test_explain_marks_the_selected_backend(self, capsys):
        assert main(["estimate", "explain", "channel-energy"]) == 0
        out = capsys.readouterr().out
        assert "<-- selected" in out
        assert "idd-reference" in out and "cacti-analytical" in out

    def test_cache_stats_detached_by_default(self, capsys):
        assert main(["estimate", "cache"]) == 0
        assert "detached (REPRO_ESTIMATE_CACHE unset)" in (
            capsys.readouterr().out
        )

    def test_cache_stats_with_record_cache(self, capsys, tmp_path):
        set_default_arbiter(
            EstimatorArbiter(cache=RecordCache(tmp_path / "records"))
        )
        assert main(["estimate", "energy", "--density", "8"]) == 0
        capsys.readouterr()
        assert main(["estimate", "cache"]) == 0
        out = capsys.readouterr().out
        assert "record cache entries" in out
        assert str(tmp_path / "records") in out


class TestVerify:
    def test_verify_matches_committed_expectations(self, capsys, tmp_path):
        reports = tmp_path / "reports"
        assert main([
            "estimate", "verify", "--report-dir", str(reports),
        ]) == 0
        out = capsys.readouterr().out
        assert "all 3 configs match" in out
        written = sorted(p.name for p in reports.iterdir())
        assert written == [
            "baseline-8g-copy8.json",
            "clr-dram-32g-copy4.json",
            "crow-cache-16g-copy8.json",
        ]
        report = json.loads((reports / "baseline-8g-copy8.json").read_text())
        assert report["status"] == "ok"
        assert report["energy"]["backend"] == "idd-reference"

    def test_verify_fails_on_drifted_expectation(self, capsys, tmp_path):
        expected = tmp_path / "expected.json"
        expected.write_text(json.dumps({
            "baseline-8g-copy8": {
                "activation_power_2rows": 99.0,
                "energy": {"backend": "idd-reference",
                           "digest": "not-the-digest"},
                "area": {"backend": "circuit-reference"},
            },
        }))
        assert main([
            "estimate", "verify", "--expected", str(expected),
        ]) == 1
        captured = capsys.readouterr()
        assert "mismatch" in captured.out
        assert "baseline-8g-copy8" in captured.err


class TestOverheadsRewire:
    def test_overheads_output_identical_to_direct_model(self, capsys):
        # Satellite guarantee: `repro overheads` now routes through the
        # estimator registry but must print exactly the pre-framework
        # numbers (the paper's Section 6 cost story).
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        model = DecoderAreaModel()
        assert f"{model.copy_decoder_overhead(8):.2%}" in out
        assert f"{model.crow_chip_overhead(8):.2%}" in out
        assert f"{model.crow_capacity_overhead(8):.2%}" in out
        # The historical anchor string from the pre-framework table.
        assert "chip area overhead" in out and "0.48%" in out
