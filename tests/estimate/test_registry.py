"""Estimator registry: deterministic ordering and name hygiene."""

import pytest

from repro.errors import ConfigError
from repro.estimate import (
    EstimatorPlugin,
    estimator_names,
    get_estimator,
    register_estimator,
)
from repro.estimate import registry as registry_module


def test_builtin_registration_order_is_stable():
    names = estimator_names()
    # Reference backends first (the arbitration tie-break), then the
    # analytical and exotic backends, in import order.
    assert names == (
        "idd-reference",
        "circuit-reference",
        "cacti-analytical",
        "exotic-memory",
    )


def test_get_estimator_returns_named_singletons():
    for name in estimator_names():
        plugin = get_estimator(name)
        assert plugin.name == name
        assert plugin is get_estimator(name)


def test_unknown_estimator_lists_registered_names():
    with pytest.raises(ConfigError, match="idd-reference"):
        get_estimator("does-not-exist")


def test_empty_name_rejected():
    with pytest.raises(ConfigError, match="non-empty"):
        register_estimator("")


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigError, match="already registered"):

        @register_estimator("idd-reference")
        class Duplicate(EstimatorPlugin):
            def supported_components(self):
                return ()


def test_registration_is_reversible_for_tests():
    @register_estimator("test-only-backend")
    class TestOnly(EstimatorPlugin):
        percent_accuracy = 10.0

        def supported_components(self):
            return ("test-component",)

    try:
        assert "test-only-backend" in estimator_names()
        assert estimator_names()[-1] == "test-only-backend"
    finally:
        del registry_module._REGISTRY["test-only-backend"]
    assert "test-only-backend" not in estimator_names()
