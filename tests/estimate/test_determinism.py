"""Estimator determinism: cache paths and process boundaries.

A record written by one process must be bit-identical to what any other
process would compute, and serving from cache must not perturb a single
bit — otherwise the record cache would silently change campaign energy
numbers depending on who computed first. The hypothesis properties pin
the hit/miss equivalence; the fresh-interpreter tests pin the process
boundary with hash randomization left on.
"""

import os
import subprocess
import sys
from pathlib import Path

from hypothesis import given, strategies as st

from repro.dram.timing import TimingParameters
from repro.energy import IddCurrents
from repro.estimate import EstimatorArbiter, RecordCache
from repro.estimate.runtime import (
    channel_energy_query,
    crow_overheads_query,
    decoder_area_query,
)
from repro.keying import stable_digest

_SRC = Path(__file__).resolve().parents[2] / "src"

_DENSITIES = (8, 16, 32, 64)

_CHILD = """\
from repro.dram.timing import TimingParameters
from repro.energy import IddCurrents
from repro.estimate import EstimatorArbiter
from repro.estimate.runtime import (
    channel_energy_query,
    decoder_area_query,
)
from repro.keying import stable_digest

arbiter = EstimatorArbiter()
energy = arbiter.estimate(channel_energy_query(
    TimingParameters.lpddr4({density}), IddCurrents.lpddr4({density}),
))
area = arbiter.estimate(decoder_area_query({rows}))
print(stable_digest(energy.to_payload()))
print(stable_digest(area.to_payload()))
"""


def _payload_digests_in_fresh_interpreter(density: int, rows: int):
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD.format(density=density, rows=rows)],
        capture_output=True, text=True, check=True,
        env={
            **os.environ,
            "PYTHONPATH": str(_SRC),
            "PYTHONHASHSEED": "random",
        },
    )
    return completed.stdout.split()


def _assert_bit_identical(a, b):
    assert a.unit == b.unit
    assert a.backend == b.backend
    assert a.accuracy_percent == b.accuracy_percent
    if isinstance(a.value, dict):
        assert set(a.value) == set(b.value)
        for key, value in a.value.items():
            assert b.value[key].hex() == value.hex(), key
    else:
        assert b.value.hex() == a.value.hex()


@given(
    density=st.sampled_from(_DENSITIES),
    mra=st.one_of(
        st.none(),
        st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
    ),
)
def test_energy_estimates_identical_on_hit_and_miss_paths(
    tmp_path_factory, density, mra
):
    tmp_path = tmp_path_factory.mktemp("records")
    query = channel_energy_query(
        TimingParameters.lpddr4(density), IddCurrents.lpddr4(density), mra
    )
    uncached = EstimatorArbiter().estimate(query)
    writer = EstimatorArbiter(cache=RecordCache(tmp_path))
    stored = writer.estimate(query)
    served = EstimatorArbiter(cache=RecordCache(tmp_path)).estimate(query)
    _assert_bit_identical(uncached, stored)
    _assert_bit_identical(uncached, served)


@given(
    rows=st.integers(min_value=1, max_value=4096),
    copy_rows=st.integers(min_value=1, max_value=512),
)
def test_area_estimates_identical_on_hit_and_miss_paths(
    tmp_path_factory, rows, copy_rows
):
    tmp_path = tmp_path_factory.mktemp("records")
    writer = EstimatorArbiter(cache=RecordCache(tmp_path))
    reader = EstimatorArbiter(cache=RecordCache(tmp_path))
    for query in (decoder_area_query(rows), crow_overheads_query(copy_rows)):
        uncached = EstimatorArbiter().estimate(query)
        _assert_bit_identical(uncached, writer.estimate(query))
        _assert_bit_identical(uncached, reader.estimate(query))
    assert reader.backend_calls == 0


def test_estimates_survive_the_process_boundary():
    arbiter = EstimatorArbiter()
    energy = arbiter.estimate(channel_energy_query(
        TimingParameters.lpddr4(16), IddCurrents.lpddr4(16)
    ))
    area = arbiter.estimate(decoder_area_query(512))
    child = _payload_digests_in_fresh_interpreter(16, 512)
    assert child == [
        stable_digest(energy.to_payload()),
        stable_digest(area.to_payload()),
    ]


def test_record_files_are_byte_identical_across_processes(tmp_path):
    # Two independent writer processes must produce the same record
    # bytes, so a shared cache directory never churns on re-runs.
    query = decoder_area_query(512)
    contents = []
    for attempt in ("a", "b"):
        directory = tmp_path / attempt
        EstimatorArbiter(cache=RecordCache(directory)).estimate(query)
        path = directory / RecordCache(directory).path_for(query).name
        contents.append(path.read_bytes())
    assert contents[0] == contents[1]
