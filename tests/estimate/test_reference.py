"""Reference backends must be byte-identical ports of the base models."""

import pytest

from repro.circuit.area import DecoderAreaModel
from repro.circuit.power import activation_power_overhead
from repro.dram.timing import TimingParameters
from repro.energy import EnergyModel, IddCurrents
from repro.errors import EstimateError
from repro.estimate import EstimateQuery, EstimatorArbiter
from repro.estimate.runtime import (
    activation_power,
    activation_power_query,
    channel_coefficients,
    channel_energy_query,
    crow_overheads,
    decoder_area_um2,
)


@pytest.fixture()
def arbiter():
    return EstimatorArbiter()


@pytest.mark.parametrize("density", [8, 16, 32, 64])
def test_channel_coefficients_identical_to_energy_model(arbiter, density):
    timing = TimingParameters.lpddr4(density)
    currents = IddCurrents.lpddr4(density)
    arbitrated = channel_coefficients(timing, currents, arbiter=arbiter)
    assert arbitrated == EnergyModel(timing, currents).coefficients()


def test_mra_overhead_attribute_reaches_the_model(arbiter):
    timing = TimingParameters.lpddr4(8)
    currents = IddCurrents.lpddr4(8)
    arbitrated = channel_coefficients(
        timing, currents, mra_power_overhead=1.3, arbiter=arbiter
    )
    assert arbitrated == EnergyModel(timing, currents, 1.3).coefficients()
    # The model folds the extra fraction into a 1 + overhead multiplier.
    assert arbitrated.mra_overhead == 1.0 + 1.3


@pytest.mark.parametrize("rows", [2, 8, 64, 512])
def test_decoder_area_identical_to_area_model(arbiter, rows):
    assert decoder_area_um2(rows, arbiter=arbiter) == DecoderAreaModel(
    ).decoder_area_um2(rows)


@pytest.mark.parametrize("copy_rows", [1, 8, 64])
def test_crow_overheads_identical_to_area_model(arbiter, copy_rows):
    model = DecoderAreaModel()
    overheads = crow_overheads(copy_rows, arbiter=arbiter)
    assert overheads == {
        "decoder_area_um2": model.decoder_area_um2(copy_rows),
        "decoder_overhead": model.copy_decoder_overhead(copy_rows),
        "chip_overhead": model.crow_chip_overhead(copy_rows),
        "capacity_overhead": model.crow_capacity_overhead(copy_rows),
    }


@pytest.mark.parametrize("n_rows", [1, 2, 4, 8])
def test_activation_power_identical_to_power_model(arbiter, n_rows):
    assert activation_power(
        n_rows, arbiter=arbiter
    ) == activation_power_overhead(n_rows)


def test_tldram_and_salp_served_by_circuit_reference(arbiter):
    model = DecoderAreaModel()
    tldram = arbiter.estimate(
        EstimateQuery(
            "tldram-substrate", "chip-overhead", {"near_rows": 32}
        )
    )
    salp = arbiter.estimate(
        EstimateQuery(
            "salp-substrate", "chip-overhead", {"subarrays_per_bank": 8}
        )
    )
    assert tldram.backend == "circuit-reference"
    assert tldram.scalar() == model.tldram_chip_overhead(32)
    assert salp.scalar() == model.salp_chip_overhead(8)


def test_missing_attribute_is_a_structured_refusal(arbiter):
    query = EstimateQuery("row-decoder", "area", {})
    with pytest.raises(EstimateError, match="rows"):
        arbiter.estimate(query)


def test_mistyped_attribute_is_a_structured_refusal(arbiter):
    query = EstimateQuery("row-decoder", "area", {"rows": "many"})
    with pytest.raises(EstimateError, match="rows"):
        arbiter.estimate(query)


def test_energy_backend_requires_real_model_inputs(arbiter):
    query = channel_energy_query(
        TimingParameters.lpddr4(8), IddCurrents.lpddr4(8)
    )
    broken = EstimateQuery(
        query.component, query.action,
        {**query.attributes, "currents": {"idd0": 1.0}},
    )
    with pytest.raises(EstimateError, match="currents"):
        arbiter.estimate(broken)


def test_cacti_backend_disagrees_but_shares_the_schema():
    timing = TimingParameters.lpddr4(8)
    currents = IddCurrents.lpddr4(8)
    reference = channel_coefficients(
        timing, currents, arbiter=EstimatorArbiter()
    )
    analytical = channel_coefficients(
        timing, currents,
        arbiter=EstimatorArbiter(names=("cacti-analytical",)),
    )
    # Same dataclass, constructed from the same mapping keys...
    assert type(analytical) is type(reference)
    # ...but a genuinely different model underneath.
    assert analytical.act_nj != reference.act_nj
    assert analytical.cycle_ns == reference.cycle_ns
