"""Persistent record cache: hits, repairs, atomicity, stats."""

import json
import os

import pytest

from repro.estimate import (
    EstimateQuery,
    Estimation,
    EstimatorArbiter,
    RecordCache,
    RECORD_VERSION,
)
from repro.estimate.runtime import decoder_area_query


def _estimation():
    return Estimation(
        value=1234.5, unit="um^2", accuracy_percent=95.0,
        backend="circuit-reference",
    )


def test_miss_then_store_then_hit(tmp_path):
    cache = RecordCache(tmp_path)
    query = decoder_area_query(512)
    assert cache.load(query) is None
    assert cache.misses == 1
    cache.store(query, _estimation())
    assert cache.stores == 1
    loaded = cache.load(query)
    assert loaded == _estimation()
    assert cache.hits == 1


def test_record_filename_is_content_addressed_and_readable(tmp_path):
    cache = RecordCache(tmp_path)
    query = decoder_area_query(512)
    path = cache.path_for(query)
    assert path.name.startswith("row-decoder-area-")
    assert path.name.endswith(f"{query.digest()}.json")
    cache.store(query, _estimation())
    payload = json.loads(path.read_text())
    assert payload["version"] == RECORD_VERSION
    assert payload["query"] == query.projection()


def test_corrupt_record_is_repaired_not_fatal(tmp_path):
    cache = RecordCache(tmp_path)
    query = decoder_area_query(512)
    cache.store(query, _estimation())
    cache.path_for(query).write_text("{not json")
    assert cache.load(query) is None
    assert cache.repairs == 1
    assert not cache.path_for(query).exists()
    # A subsequent store + load recovers cleanly.
    cache.store(query, _estimation())
    assert cache.load(query) == _estimation()


def test_version_mismatch_is_repaired(tmp_path):
    cache = RecordCache(tmp_path)
    query = decoder_area_query(512)
    cache.store(query, _estimation())
    path = cache.path_for(query)
    payload = json.loads(path.read_text())
    payload["version"] = RECORD_VERSION + 1
    path.write_text(json.dumps(payload))
    assert cache.load(query) is None
    assert cache.repairs == 1


def test_record_claiming_wrong_query_is_repaired(tmp_path):
    # A digest collision (or a hand-edited file) must not serve a
    # record for a different query.
    cache = RecordCache(tmp_path)
    query = decoder_area_query(512)
    other = decoder_area_query(8)
    cache.store(other, _estimation())
    cache.path_for(other).rename(cache.path_for(query))
    assert cache.load(query) is None
    assert cache.repairs == 1


def test_no_tmp_files_left_behind(tmp_path):
    cache = RecordCache(tmp_path)
    for rows in (8, 64, 512):
        cache.store(decoder_area_query(rows), _estimation())
    leftovers = [p for p in tmp_path.iterdir() if not p.suffix == ".json"]
    assert leftovers == []
    assert str(os.getpid()) not in "".join(
        p.name for p in tmp_path.iterdir()
    )


def test_stats_reports_directory_contents(tmp_path):
    cache = RecordCache(tmp_path)
    cache.store(decoder_area_query(512), _estimation())
    cache.load(decoder_area_query(512))
    cache.load(decoder_area_query(8))
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["bytes"] > 0
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["stores"] == 1
    assert stats["directory"] == str(tmp_path)


def test_arbiter_counts_cache_service(tmp_path):
    cache = RecordCache(tmp_path)
    arbiter = EstimatorArbiter(cache=cache)
    query = decoder_area_query(512)
    first = arbiter.estimate(query)
    second = arbiter.estimate(query)
    assert first == second
    assert arbiter.backend_calls == 1
    assert arbiter.served_from_cache == 1
    # A fresh arbiter over the same directory never touches a backend:
    # this is the cross-process warm-start contract.
    warm = EstimatorArbiter(cache=RecordCache(tmp_path))
    assert warm.estimate(query) == first
    assert warm.backend_calls == 0
    assert warm.served_from_cache == 1


def test_cached_estimation_preserves_backend_stamp(tmp_path):
    cache = RecordCache(tmp_path)
    arbiter = EstimatorArbiter(cache=cache)
    query = EstimateQuery(
        "memory-array", "area",
        {"technology": "vt-cell-ram", "bits": 4096},
    )
    stored = arbiter.estimate(query)
    served = EstimatorArbiter(cache=RecordCache(tmp_path)).estimate(query)
    assert stored.backend == "exotic-memory"
    assert served.backend == "exotic-memory"


def test_cache_rejects_file_path(tmp_path):
    target = tmp_path / "not-a-dir"
    target.write_text("x")
    with pytest.raises(OSError):
        RecordCache(target)
