"""Property tests on the DRAM timing engine.

Drives the device with randomly-generated *legal* command sequences (via
``earliest_issue``) and asserts the global invariants that make the
substrate trustworthy: issuing at the earliest legal time never violates
timing, bank state stays consistent, and earliest-issue is monotone.
"""

from hypothesis import given, settings, strategies as st

from repro.dram import CrowTimings, DramChannel, DramGeometry, TimingParameters
from repro.dram.commands import ActTimings, Command, CommandKind, RowId
from repro.errors import ProtocolError

GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()
CROW = CrowTimings.from_factors(TIMING)

# An intent is (action, bank, row, col) — translated into whichever command
# is legal in the current bank state.
intents = st.lists(
    st.tuples(
        st.sampled_from(["act", "act_t", "act_c", "rd", "wr", "pre", "ref"]),
        st.integers(0, GEO.banks_per_rank - 1),
        st.integers(0, GEO.rows_per_bank - 1),
        st.integers(0, GEO.columns_per_row - 1),
    ),
    min_size=1,
    max_size=60,
)


def act_timings(kind: CommandKind) -> ActTimings | None:
    if kind is CommandKind.ACT:
        return None
    if kind is CommandKind.ACT_T:
        return ActTimings(
            trcd=CROW.trcd_act_t_full,
            tras_full=CROW.tras_act_t_full,
            tras_early=CROW.tras_act_t_early,
            twr=CROW.twr_mra_early,
            twr_full=CROW.twr_mra_full,
        )
    return ActTimings(
        trcd=CROW.trcd_act_c,
        tras_full=CROW.tras_act_c_full,
        tras_early=CROW.tras_act_c_early,
        twr=CROW.twr_mra_early,
        twr_full=CROW.twr_mra_full,
    )


def build_command(channel, action, bank, row, col) -> Command | None:
    """Translate an intent into a command legal for the current state."""
    bank_state = channel.banks[bank]
    if action == "ref":
        if any(b.is_open for b in channel.banks):
            return None
        return Command(CommandKind.REF)
    if action in ("act", "act_t", "act_c"):
        if bank_state.is_open:
            return None
        regular = RowId.regular(row, GEO.rows_per_subarray)
        if action == "act":
            return Command(CommandKind.ACT, bank=bank, rows=(regular,))
        kind = CommandKind.ACT_T if action == "act_t" else CommandKind.ACT_C
        return Command(
            kind,
            bank=bank,
            rows=(regular, RowId.copy(regular.subarray, 0)),
            timings=act_timings(kind),
        )
    if not bank_state.is_open:
        return None
    if action == "pre":
        return Command(CommandKind.PRE, bank=bank)
    kind = CommandKind.RD if action == "rd" else CommandKind.WR
    return Command(kind, bank=bank, col=col)


class TestLegalSequences:
    @given(sequence=intents)
    @settings(max_examples=60, deadline=None)
    def test_issue_at_earliest_never_violates(self, sequence):
        """For any intent sequence: issuing each realizable command at its
        earliest legal time succeeds and advances device state."""
        channel = DramChannel(GEO, TIMING)
        now = 0
        for action, bank, row, col in sequence:
            command = build_command(channel, action, bank, row, col)
            if command is None:
                continue
            earliest = channel.earliest_issue(command)
            assert earliest >= 0
            now = max(now, earliest)
            channel.issue(command, now)   # must not raise
            now += 1

    @given(sequence=intents)
    @settings(max_examples=40, deadline=None)
    def test_earliest_is_truly_earliest(self, sequence):
        """Issuing one cycle before the reported earliest must fail."""
        from repro.errors import TimingViolationError

        channel = DramChannel(GEO, TIMING)
        now = 0
        checked = 0
        for action, bank, row, col in sequence:
            command = build_command(channel, action, bank, row, col)
            if command is None:
                continue
            earliest = channel.earliest_issue(command)
            if earliest > now and checked < 5:
                checked += 1
                try:
                    channel.issue(command, earliest - 1)
                    assert False, "issue before earliest must raise"
                except TimingViolationError:
                    pass
            now = max(now, earliest)
            channel.issue(command, now)
            now += 1

    @given(sequence=intents)
    @settings(max_examples=40, deadline=None)
    def test_state_consistency(self, sequence):
        """Open-row bookkeeping matches the commands issued."""
        channel = DramChannel(GEO, TIMING)
        shadow_open: dict[int, tuple | None] = {
            b: None for b in range(GEO.banks_per_rank)
        }
        now = 0
        for action, bank, row, col in sequence:
            command = build_command(channel, action, bank, row, col)
            if command is None:
                continue
            now = max(now, channel.earliest_issue(command))
            channel.issue(command, now)
            now += 1
            if command.kind.is_activation:
                shadow_open[command.bank] = command.rows
            elif command.kind is CommandKind.PRE:
                shadow_open[command.bank] = None
        for bank_index, rows in shadow_open.items():
            assert channel.banks[bank_index].open_rows == rows

    @given(sequence=intents)
    @settings(max_examples=30, deadline=None)
    def test_counters_match_issues(self, sequence):
        channel = DramChannel(GEO, TIMING)
        issued = {kind: 0 for kind in CommandKind}
        now = 0
        for action, bank, row, col in sequence:
            command = build_command(channel, action, bank, row, col)
            if command is None:
                continue
            now = max(now, channel.earliest_issue(command))
            channel.issue(command, now)
            issued[command.kind] += 1
            now += 1
        assert channel.counts == issued
