"""Cross-process determinism of the RetentionModel weak-row sampling.

The weak-row sets are the ground truth for CROW-ref remapping, the
conformance checker's weak-row rules and the probe retention scans — if
two processes (a coordinator and a worker, or two fleet nodes) derived
different sets from the same seed, every one of those layers would
silently diverge. These tests pin the guarantee at the process boundary:
a *fresh interpreter* must reproduce ``weak_set_digest`` byte-for-byte,
in both fixed and sampled modes, with hash randomization left on (the
digest must not lean on ``hash()`` or iteration order).
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.dram.geometry import DramGeometry
from repro.dram.retention import RetentionModel

_SRC = Path(__file__).resolve().parents[2] / "src"

_GEOMETRY = dict(
    channels=1, banks_per_rank=4, rows_per_bank=1024, rows_per_subarray=256,
)

_CHILD = """\
from repro.dram.geometry import DramGeometry
from repro.dram.retention import RetentionModel

model = RetentionModel(
    DramGeometry(channels=1, banks_per_rank=4, rows_per_bank=1024,
                 rows_per_subarray=256),
    target_interval_ms=128.0,
    weak_rows_per_subarray={weak!r},
    seed={seed},
)
print(model.weak_set_digest())
"""


def _digest_in_fresh_interpreter(seed: int, weak: "int | None") -> str:
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD.format(seed=seed, weak=weak)],
        capture_output=True, text=True, check=True,
        env={
            **os.environ,
            "PYTHONPATH": str(_SRC),
            "PYTHONHASHSEED": "random",
        },
    )
    return completed.stdout.strip()


def _model(seed: int, weak: "int | None") -> RetentionModel:
    return RetentionModel(
        DramGeometry(**_GEOMETRY),
        target_interval_ms=128.0,
        weak_rows_per_subarray=weak,
        seed=seed,
    )


def test_fixed_mode_digest_survives_the_process_boundary():
    assert _model(7, 3).weak_set_digest() == _digest_in_fresh_interpreter(
        7, 3
    )


def test_sampled_mode_digest_survives_the_process_boundary():
    assert (
        _model(7, None).weak_set_digest()
        == _digest_in_fresh_interpreter(7, None)
    )


def test_different_seeds_sample_different_sets():
    assert _model(7, 3).weak_set_digest() != _model(8, 3).weak_set_digest()


def test_query_order_does_not_matter():
    forward, backward = _model(7, 3), _model(7, 3)
    banks = DramGeometry(**_GEOMETRY).banks_per_channel
    for bank in range(banks):
        forward.weak_regular_rows(0, bank, 0)
    for bank in reversed(range(banks)):
        backward.weak_regular_rows(0, bank, 0)
    assert forward.weak_set_digest() == backward.weak_set_digest()
