"""Tests for the SALP bank state machine and its energy residency split."""

import pytest

from repro.dram import DramChannel, DramGeometry, TimingParameters
from repro.dram.bank import SalpBankState
from repro.dram.commands import Command, CommandKind, RowId
from repro.errors import ProtocolError

GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()


def act(row: int, bank: int = 0) -> Command:
    return Command(CommandKind.ACT, bank=bank, rows=(RowId.regular(row, 512),))


def make_channel() -> DramChannel:
    return DramChannel(GEO, TIMING, salp_subarrays=GEO.subarrays_per_bank)


class TestSubarrayIndependence:
    def test_two_subarrays_open_simultaneously(self):
        channel = make_channel()
        channel.issue(act(0), 0)                       # subarray 0
        t = channel.earliest_issue(act(600))           # subarray 1
        channel.issue(act(600), t)
        bank = channel.banks[0]
        assert bank.open_buffer_count == 2
        assert bank.has_open_row(RowId.regular(0, 512))
        assert bank.has_open_row(RowId.regular(600, 512))

    def test_same_subarray_still_conflicts(self):
        channel = make_channel()
        channel.issue(act(0), 0)
        with pytest.raises(ProtocolError):
            channel.earliest_issue(act(1))     # same subarray: must PRE first

    def test_per_subarray_precharge(self):
        channel = make_channel()
        channel.issue(act(0), 0)
        channel.issue(act(600), channel.earliest_issue(act(600)))
        pre = Command(CommandKind.PRE, bank=0, subarray=0)
        channel.issue(pre, channel.earliest_issue(pre))
        bank = channel.banks[0]
        assert bank.open_buffer_count == 1
        assert not bank.has_open_row(RowId.regular(0, 512))

    def test_salp_pre_requires_subarray(self):
        channel = make_channel()
        channel.issue(act(0), 0)
        with pytest.raises(ProtocolError):
            channel.earliest_issue(Command(CommandKind.PRE, bank=0))

    def test_column_access_needs_subarray(self):
        channel = make_channel()
        channel.issue(act(0), 0)
        with pytest.raises(ProtocolError):
            channel.earliest_issue(Command(CommandKind.RD, bank=0, col=0))
        rd = Command(CommandKind.RD, bank=0, col=0, subarray=0)
        assert channel.earliest_issue(rd) == TIMING.trcd


class TestEnergyResidency:
    def test_extra_buffers_counted_separately(self):
        channel = make_channel()
        channel.issue(act(0), 0)
        t = channel.earliest_issue(act(600))
        channel.issue(act(600), t)
        now = 1000
        open_cycles = channel.open_buffer_cycles(now)
        active_cycles = channel.bank_active_cycles(now)
        # Two buffers accumulate ~2x the open residency, but the bank was
        # active only once over the interval.
        assert open_cycles == (now - 0) + (now - t)
        assert active_cycles == now

    def test_bank_active_epoch_closes_on_last_pre(self):
        channel = make_channel()
        channel.issue(act(0), 0)
        pre = Command(CommandKind.PRE, bank=0, subarray=0)
        t_pre = channel.earliest_issue(pre)
        channel.issue(pre, t_pre)
        later = t_pre + 500
        assert channel.bank_active_cycles(later) == t_pre

    def test_conventional_channel_active_equals_open(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(act(0), 0)
        assert channel.open_buffer_cycles(400) == channel.bank_active_cycles(400)

    def test_refresh_requires_all_subarrays_closed(self):
        channel = make_channel()
        channel.issue(act(0), 0)
        with pytest.raises(ProtocolError):
            channel.earliest_issue(Command(CommandKind.REF))
