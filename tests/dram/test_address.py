"""Tests for physical-address interleaving."""

import pytest
from hypothesis import given, strategies as st

from repro.dram import AddressMapper, DramAddress, DramGeometry
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def mapper() -> AddressMapper:
    return AddressMapper(DramGeometry())


class TestDecode:
    def test_consecutive_lines_stripe_across_channels(self, mapper):
        """The default mapping interleaves cache lines channel-first."""
        line = mapper.geometry.line_size_bytes
        channels = [mapper.decode(i * line).channel for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_same_row_for_nearby_lines(self, mapper):
        """Lines within one channel's slice of a row share (bank, row)."""
        line = mapper.geometry.line_size_bytes
        first = mapper.decode(0)
        second = mapper.decode(4 * line)  # next line on channel 0
        assert (first.bank, first.row) == (second.bank, second.row)
        assert second.col == first.col + 1

    def test_row_bits_are_highest(self, mapper):
        low = mapper.decode(0)
        high = mapper.decode(1 << (mapper.address_bits - 1))
        assert low.row != high.row

    def test_negative_address_rejected(self, mapper):
        with pytest.raises(ConfigError):
            mapper.decode(-1)


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=(1 << 34) - 1))
    def test_decode_encode_round_trip(self, address):
        """encode(decode(a)) recovers the line-aligned address."""
        mapper = AddressMapper(DramGeometry())
        line_aligned = address & ~(mapper.geometry.line_size_bytes - 1)
        assert mapper.encode(mapper.decode(address)) == line_aligned

    @given(
        channel=st.integers(0, 3),
        bank=st.integers(0, 7),
        row=st.integers(0, 65535),
        col=st.integers(0, 127),
    )
    def test_encode_decode_round_trip(self, channel, bank, row, col):
        mapper = AddressMapper(DramGeometry())
        location = DramAddress(channel=channel, rank=0, bank=bank, row=row, col=col)
        assert mapper.decode(mapper.encode(location)) == location

    def test_encode_rejects_out_of_range(self, mapper):
        with pytest.raises(ConfigError):
            mapper.encode(DramAddress(channel=4, rank=0, bank=0, row=0, col=0))
        with pytest.raises(ConfigError):
            mapper.encode(DramAddress(channel=0, rank=0, bank=0, row=1 << 16, col=0))


class TestCoverage:
    def test_address_bits_cover_capacity(self, mapper):
        assert 1 << mapper.address_bits == mapper.geometry.capacity_bytes

    @given(st.integers(min_value=0, max_value=(1 << 34) - 1))
    def test_decode_within_bounds(self, address):
        mapper = AddressMapper(DramGeometry())
        loc = mapper.decode(address)
        geo = mapper.geometry
        assert 0 <= loc.channel < geo.channels
        assert 0 <= loc.bank < geo.banks_per_rank
        assert 0 <= loc.row < geo.rows_per_bank
        assert 0 <= loc.col < geo.columns_per_row
