"""Property tests on the functional cell array's charge/retention model."""

from hypothesis import given, settings, strategies as st

from repro.dram import CellArray, DramGeometry, TimingParameters
from repro.dram.bank import PrechargeResult
from repro.dram.commands import Command, CommandKind, RowId
from repro.units import ms_to_cycles

GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()


def pre_result(rows, fully_restored):
    return PrechargeResult(rows=rows, fully_restored=fully_restored,
                           open_cycles=100)


class TestChargeSemantics:
    @given(row_number=st.integers(0, 4095), full=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_precharge_sets_consistent_state(self, row_number, full):
        """After any precharge of a pair: charge and pairing agree."""
        cells = CellArray(GEO, clock_mhz=TIMING.clock_mhz)
        regular = RowId.regular(row_number, GEO.rows_per_subarray)
        copy = RowId.copy(regular.subarray, 0)
        cells.set_row_data(0, regular, 1)
        cells.on_precharge(
            Command(CommandKind.PRE, bank=0), now=100,
            result=pre_result((regular, copy), full),
        )
        assert cells.requires_pair(0, regular) == (not full)
        if full:
            assert cells.charge_fraction(0, regular) == (
                cells.tech.full_restore_fraction
            )
        else:
            assert cells.charge_fraction(0, regular) < (
                cells.tech.full_restore_fraction
            )

    @given(
        elapsed_ms=st.floats(min_value=0.0, max_value=60.0),
        row_number=st.integers(0, 4095),
    )
    @settings(max_examples=40, deadline=None)
    def test_full_rows_never_expire_within_window(self, elapsed_ms, row_number):
        """A fully-restored strong row is readable anywhere inside 64 ms."""
        cells = CellArray(GEO, clock_mhz=TIMING.clock_mhz)
        regular = RowId.regular(row_number, GEO.rows_per_subarray)
        cells.set_row_data(0, regular, 7, now=0)
        when = ms_to_cycles(elapsed_ms, TIMING.clock_mhz)
        cells.on_activate(
            Command(CommandKind.ACT, bank=0, rows=(regular,)), when
        )   # must not raise

    @given(row_number=st.integers(0, 4095))
    @settings(max_examples=30, deadline=None)
    def test_refresh_always_makes_single_activation_safe(self, row_number):
        """Whatever the prior partial state, refresh re-enables single ACT."""
        cells = CellArray(GEO, clock_mhz=TIMING.clock_mhz)
        regular = RowId.regular(row_number, GEO.rows_per_subarray)
        copy = RowId.copy(regular.subarray, 0)
        cells.set_row_data(0, regular, 1)
        cells.on_precharge(
            Command(CommandKind.PRE, bank=0), now=100,
            result=pre_result((regular, copy), fully_restored=False),
        )
        assert cells.requires_pair(0, regular)
        bank_row = regular.bank_row(GEO.rows_per_subarray)
        cells.on_refresh(range(bank_row, bank_row + 1), now=200)
        assert not cells.requires_pair(0, regular)
        cells.on_activate(
            Command(CommandKind.ACT, bank=0, rows=(regular,)), 300
        )

    @given(pattern=st.integers(0, 2**63 - 1), row_number=st.integers(0, 4095))
    @settings(max_examples=30, deadline=None)
    def test_act_c_copy_is_exact(self, pattern, row_number):
        cells = CellArray(GEO, clock_mhz=TIMING.clock_mhz)
        regular = RowId.regular(row_number, GEO.rows_per_subarray)
        copy = RowId.copy(regular.subarray, 1)
        cells.set_row_data(0, regular, pattern)
        from repro.dram.commands import ActTimings

        command = Command(
            CommandKind.ACT_C, bank=0, rows=(regular, copy),
            timings=ActTimings(trcd=29, tras_full=81, tras_early=81, twr=29),
        )
        cells.on_activate(command, now=10)
        import numpy as np

        assert np.array_equal(cells.row_data(0, copy),
                              cells.row_data(0, regular))
