"""Tests for bank state machines and channel-level command enforcement."""

import pytest

from repro.dram import (
    BankState,
    CrowTimings,
    DramChannel,
    DramGeometry,
    TimingParameters,
)
from repro.dram.commands import ActTimings, Command, CommandKind, RowId
from repro.errors import ConfigError, ProtocolError, TimingViolationError


GEO = DramGeometry()
TIMING = TimingParameters.lpddr4()
CROW = CrowTimings.from_factors(TIMING)


def act(row: int, bank: int = 0) -> Command:
    return Command(CommandKind.ACT, bank=bank, rows=(RowId.regular(row, 512),))


def act_t(row: int, copy_index: int = 0, bank: int = 0,
          partial: bool = False, early: bool = True) -> Command:
    regular = RowId.regular(row, 512)
    timings = ActTimings(
        trcd=CROW.trcd_act_t_partial if partial else CROW.trcd_act_t_full,
        tras_full=CROW.tras_act_t_full,
        tras_early=CROW.tras_act_t_early if early else CROW.tras_act_t_full,
        twr=CROW.twr_mra_early,
        twr_full=CROW.twr_mra_full,
    )
    return Command(
        CommandKind.ACT_T,
        bank=bank,
        rows=(regular, RowId.copy(regular.subarray, copy_index)),
        timings=timings,
    )


class TestBankState:
    def test_activate_then_read_honors_trcd(self):
        bank = BankState(TIMING)
        bank.issue_act(0, (RowId.regular(5, 512),), ActTimings(
            trcd=TIMING.trcd, tras_full=TIMING.tras,
            tras_early=TIMING.tras, twr=TIMING.twr))
        assert bank.earliest_col() == TIMING.trcd
        with pytest.raises(TimingViolationError):
            bank.issue_rd(TIMING.trcd - 1)
        bank.issue_rd(TIMING.trcd)

    def test_precharge_honors_tras(self):
        bank = BankState(TIMING)
        bank.issue_act(0, (RowId.regular(5, 512),), ActTimings(
            trcd=TIMING.trcd, tras_full=TIMING.tras,
            tras_early=TIMING.tras, twr=TIMING.twr))
        assert bank.earliest_pre() == TIMING.tras
        with pytest.raises(TimingViolationError):
            bank.issue_pre(TIMING.tras - 1)
        result = bank.issue_pre(TIMING.tras)
        assert result.fully_restored

    def test_activate_open_bank_is_protocol_error(self):
        bank = BankState(TIMING)
        timings = ActTimings(trcd=29, tras_full=68, tras_early=68, twr=29)
        bank.issue_act(0, (RowId.regular(5, 512),), timings)
        with pytest.raises(ProtocolError):
            bank.earliest_act()

    def test_read_closed_bank_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            BankState(TIMING).earliest_col()

    def test_precharge_after_read_waits_trtp(self):
        bank = BankState(TIMING)
        timings = ActTimings(trcd=29, tras_full=68, tras_early=68, twr=29)
        bank.issue_act(0, (RowId.regular(5, 512),), timings)
        late_read = 100
        bank.issue_rd(late_read)
        assert bank.earliest_pre() == late_read + TIMING.trtp

    def test_precharge_after_write_waits_twr(self):
        bank = BankState(TIMING)
        timings = ActTimings(trcd=29, tras_full=68, tras_early=68, twr=29)
        bank.issue_act(0, (RowId.regular(5, 512),), timings)
        bank.issue_wr(40)
        expected = 40 + TIMING.tcwl + TIMING.tbl + TIMING.twr
        assert bank.earliest_pre() == expected

    def test_early_tras_allows_earlier_precharge(self):
        bank = BankState(TIMING)
        timings = ActTimings(
            trcd=CROW.trcd_act_t_full,
            tras_full=CROW.tras_act_t_full,
            tras_early=CROW.tras_act_t_early,
            twr=TIMING.twr,
        )
        bank.issue_act(0, (RowId.regular(5, 512),), timings)
        assert bank.earliest_pre() == CROW.tras_act_t_early
        result = bank.issue_pre(CROW.tras_act_t_early)
        assert not result.fully_restored

    def test_waiting_full_tras_restores_fully(self):
        bank = BankState(TIMING)
        timings = ActTimings(
            trcd=CROW.trcd_act_t_full,
            tras_full=CROW.tras_act_t_full,
            tras_early=CROW.tras_act_t_early,
            twr=TIMING.twr,
        )
        bank.issue_act(0, (RowId.regular(5, 512),), timings)
        result = bank.issue_pre(CROW.tras_act_t_full)
        assert result.fully_restored

    def test_reduced_twr_write_blocks_full_restoration(self):
        """A write with early-terminated tWR leaves the pair partial even
        when tRAS-full has elapsed (paper Section 4.1.3)."""
        bank = BankState(TIMING)
        timings = ActTimings(
            trcd=CROW.trcd_act_t_full,
            tras_full=CROW.tras_act_t_full,
            tras_early=CROW.tras_act_t_early,
            twr=CROW.twr_mra_early,
            twr_full=CROW.twr_mra_full,
        )
        bank.issue_act(0, (RowId.regular(5, 512),), timings)
        wr_time = CROW.tras_act_t_full
        bank.issue_wr(wr_time)
        pre_at = wr_time + TIMING.tcwl + TIMING.tbl + CROW.twr_mra_early
        assert not bank.fully_restored_if_precharged_at(pre_at)
        full_at = wr_time + TIMING.tcwl + TIMING.tbl + CROW.twr_mra_full
        assert bank.fully_restored_if_precharged_at(full_at)

    def test_reactivation_after_precharge_waits_trp(self):
        bank = BankState(TIMING)
        timings = ActTimings(trcd=29, tras_full=68, tras_early=68, twr=29)
        bank.issue_act(0, (RowId.regular(5, 512),), timings)
        bank.issue_pre(TIMING.tras)
        assert bank.earliest_act() == TIMING.tras + TIMING.trp


class TestChannelConstraints:
    def test_trrd_between_activations(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(act(0, bank=0), 0)
        assert channel.earliest_issue(act(0, bank=1)) == TIMING.trrd

    def test_tfaw_limits_four_activations(self):
        channel = DramChannel(GEO, TIMING)
        for i in range(4):
            cmd = act(0, bank=i)
            channel.issue(cmd, channel.earliest_issue(cmd))
        fifth = act(0, bank=4)
        assert channel.earliest_issue(fifth) >= TIMING.tfaw

    def test_data_bus_tccd_between_reads(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(act(0, bank=0), 0)
        channel.issue(act(0, bank=1), TIMING.trrd)
        rd0 = Command(CommandKind.RD, bank=0, col=0)
        t0 = channel.earliest_issue(rd0)
        channel.issue(rd0, t0)
        rd1 = Command(CommandKind.RD, bank=1, col=0)
        expected = max(t0 + TIMING.tccd, TIMING.trrd + TIMING.trcd)
        assert channel.earliest_issue(rd1) == expected
        # Issue a second read on the *same* bank to isolate the bus bound.
        rd0b = Command(CommandKind.RD, bank=0, col=1)
        assert channel.earliest_issue(rd0b) == t0 + TIMING.tccd

    def test_write_to_read_turnaround(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(act(0, bank=0), 0)
        wr = Command(CommandKind.WR, bank=0, col=0)
        t0 = channel.earliest_issue(wr)
        channel.issue(wr, t0)
        rd = Command(CommandKind.RD, bank=0, col=1)
        expected = t0 + TIMING.tcwl + TIMING.tbl + TIMING.twtr
        assert channel.earliest_issue(rd) == expected

    def test_read_returns_data_time(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(act(0), 0)
        rd = Command(CommandKind.RD, bank=0, col=0)
        t0 = channel.earliest_issue(rd)
        result = channel.issue(rd, t0)
        assert result.data_at == t0 + TIMING.tcl + TIMING.tbl

    def test_issue_too_early_raises(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(act(0), 0)
        with pytest.raises(TimingViolationError):
            channel.issue(Command(CommandKind.RD, bank=0, col=0), 1)


class TestCrowCommandsOnDevice:
    def test_act_t_enables_early_read(self):
        channel = DramChannel(GEO, TIMING)
        cmd = act_t(100)
        channel.issue(cmd, 0)
        rd = Command(CommandKind.RD, bank=0, col=0)
        assert channel.earliest_issue(rd) == CROW.trcd_act_t_full
        assert CROW.trcd_act_t_full < TIMING.trcd

    def test_act_t_occupies_command_bus_two_cycles(self):
        """The copy-row address needs an extra transfer cycle."""
        channel = DramChannel(GEO, TIMING)
        channel.issue(act_t(100, bank=0), 0)
        assert channel.cmd_bus_free == 2
        channel2 = DramChannel(GEO, TIMING)
        channel2.issue(act(100, bank=0), 0)
        assert channel2.cmd_bus_free == 1

    def test_act_t_pair_is_visible_as_open(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(act_t(100), 0)
        rows = channel.open_rows(0)
        assert rows is not None and len(rows) == 2

    def test_act_t_rejects_cross_subarray_pair(self):
        regular = RowId.regular(100, 512)       # subarray 0
        copy = RowId.copy(5, 0)                 # subarray 5
        with pytest.raises(ConfigError):
            Command(CommandKind.ACT_T, bank=0, rows=(regular, copy))

    def test_act_c_copy_target_must_be_copy_row(self):
        with pytest.raises(ConfigError):
            Command(
                CommandKind.ACT_C,
                bank=0,
                rows=(RowId.regular(100, 512), RowId.regular(101, 512)),
            )


class TestRefresh:
    def test_refresh_requires_closed_banks(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(act(0), 0)
        with pytest.raises(ProtocolError):
            channel.earliest_issue(Command(CommandKind.REF))

    def test_refresh_blocks_activations_for_trfc(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(Command(CommandKind.REF), 0)
        assert channel.earliest_issue(act(0)) == TIMING.trfc

    def test_refresh_cursor_advances(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(Command(CommandKind.REF), 0)
        first = channel.refresh_cursor
        channel.issue(Command(CommandKind.REF), TIMING.trfc)
        assert channel.refresh_cursor == 2 * first

    def test_refresh_counts(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(Command(CommandKind.REF), 0)
        assert channel.counts[CommandKind.REF] == 1


class TestStatistics:
    def test_open_buffer_cycles_accumulate(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(act(0), 0)
        channel.issue(Command(CommandKind.PRE, bank=0), TIMING.tras)
        assert channel.open_buffer_cycles(TIMING.tras) == TIMING.tras

    def test_open_buffer_cycles_include_still_open(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(act(0), 0)
        assert channel.open_buffer_cycles(50) == 50

    def test_activation_count_totals_all_kinds(self):
        channel = DramChannel(GEO, TIMING)
        channel.issue(act(0, bank=0), 0)
        channel.issue(act_t(0, bank=1), TIMING.trrd)
        assert channel.activation_count == 2
