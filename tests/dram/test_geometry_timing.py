"""Tests for DRAM geometry and timing parameter derivation."""

import pytest

from repro.dram import CrowTimings, DramGeometry, TimingParameters
from repro.dram.timing import TRFC_NS_BY_DENSITY
from repro.errors import ConfigError
from repro.units import GIB


class TestGeometry:
    def test_table2_defaults(self):
        geo = DramGeometry()
        assert geo.channels == 4
        assert geo.banks_per_rank == 8
        assert geo.rows_per_bank == 65536
        assert geo.subarrays_per_bank == 128
        assert geo.columns_per_row == 128

    def test_capacity(self):
        assert DramGeometry().capacity_bytes == 16 * GIB

    def test_total_subarrays(self):
        """8 banks x 128 subarrays x 4 channels."""
        assert DramGeometry().total_subarrays == 4096

    def test_subarray_of_row(self):
        geo = DramGeometry()
        assert geo.subarray_of_row(0) == 0
        assert geo.subarray_of_row(511) == 0
        assert geo.subarray_of_row(512) == 1
        assert geo.row_within_subarray(513) == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            DramGeometry(banks_per_rank=6)

    def test_rejects_fractional_subarrays(self):
        with pytest.raises(ConfigError):
            DramGeometry(rows_per_bank=1024, rows_per_subarray=512 + 256)

    def test_row_out_of_range(self):
        with pytest.raises(ConfigError):
            DramGeometry().subarray_of_row(65536)


class TestTimingParameters:
    def test_lpddr4_table2_anchors(self):
        timing = TimingParameters.lpddr4()
        assert timing.trcd == 29          # 18 ns @ 1600 MHz
        assert timing.twr == 29
        assert timing.trp == 29
        assert 67 <= timing.tras <= 68    # 42 ns (paper rounds down)

    def test_trc_is_tras_plus_trp(self):
        timing = TimingParameters.lpddr4()
        assert timing.trc == timing.tras + timing.trp

    def test_trefi_64ms_window(self):
        """64 ms / 8192 REF commands = 7.8125 us = 12500 cycles."""
        assert TimingParameters.lpddr4(refresh_window_ms=64.0).trefi == 12500

    def test_extended_window_doubles_trefi(self):
        base = TimingParameters.lpddr4(refresh_window_ms=64.0)
        extended = base.with_refresh_window(128.0)
        assert extended.trefi == 2 * base.trefi
        assert extended.trfc == base.trfc

    def test_trfc_grows_with_density(self):
        values = [
            TimingParameters.lpddr4(density_gbit=d).trfc
            for d in sorted(TRFC_NS_BY_DENSITY)
        ]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_unknown_density_rejected(self):
        with pytest.raises(ConfigError):
            TimingParameters.lpddr4(density_gbit=128)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ConfigError):
            TimingParameters(trcd=0)

    def test_rejects_tras_shorter_than_trcd(self):
        """A row that closes before its cells finish opening is
        physically meaningless — no column access could ever be legal."""
        with pytest.raises(ConfigError, match="tras"):
            TimingParameters(trcd=30, tras=29)

    def test_accepts_tras_equal_to_trcd(self):
        timing = TimingParameters(trcd=29, tras=29)
        assert timing.tras == timing.trcd

    def test_rejects_tfaw_shorter_than_trrd(self):
        """The 4-ACT window cannot be tighter than a single ACT-to-ACT
        gap; such a tFAW could never be the binding constraint."""
        with pytest.raises(ConfigError, match="tfaw"):
            TimingParameters(trrd=16, tfaw=15)

    def test_accepts_tfaw_equal_to_trrd(self):
        timing = TimingParameters(trrd=16, tfaw=16)
        assert timing.tfaw == timing.trrd

    def test_rejects_trefi_not_exceeding_trfc(self):
        """If each REF takes at least a full refresh interval, the bus
        does nothing but refresh and no request can ever be served."""
        with pytest.raises(ConfigError, match="trefi"):
            TimingParameters(trfc=448, trefi=448)

    def test_accepts_trefi_exceeding_trfc(self):
        timing = TimingParameters(trfc=448, trefi=449)
        assert timing.trefi > timing.trfc


class TestCrowTimings:
    def test_from_paper_factors(self):
        timing = TimingParameters.lpddr4()
        crow = CrowTimings.from_factors(timing)
        # Table 1: ACT-t on fully-restored rows cuts tRCD by 38%.
        assert crow.trcd_act_t_full == pytest.approx(timing.trcd * 0.62, abs=1)
        # ACT-c leaves tRCD unchanged and adds 18% to tRAS.
        assert crow.trcd_act_c == timing.trcd
        assert crow.tras_act_c_full == pytest.approx(timing.tras * 1.18, abs=1)
        # Early termination always beats the full-restore variant.
        assert crow.tras_act_t_early < crow.tras_act_t_full
        assert crow.twr_mra_early < timing.twr < crow.twr_mra_full

    def test_partial_rows_activate_slower_than_full(self):
        crow = CrowTimings.from_factors(TimingParameters.lpddr4())
        assert crow.trcd_act_t_partial > crow.trcd_act_t_full

    def test_derived_factors_also_resolve(self):
        from repro.circuit import derive_crow_timing_factors

        timing = TimingParameters.lpddr4()
        crow = CrowTimings.from_factors(timing, derive_crow_timing_factors())
        assert crow.trcd_act_t_full < timing.trcd
