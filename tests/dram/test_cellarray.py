"""Tests for the functional cell array: RowClone, partial restore, retention,
RowHammer disturbance."""

import numpy as np
import pytest

from repro.dram import (
    CellArray,
    CrowTimings,
    DramChannel,
    DramGeometry,
    RetentionModel,
    TimingParameters,
)
from repro.dram.commands import ActTimings, Command, CommandKind, RowId
from repro.errors import DataIntegrityError
from repro.units import ms_to_cycles

GEO = DramGeometry()
TIMING = TimingParameters.lpddr4()
CROW = CrowTimings.from_factors(TIMING)


def make_channel(**cell_kwargs) -> tuple[DramChannel, CellArray]:
    cells = CellArray(GEO, clock_mhz=TIMING.clock_mhz, **cell_kwargs)
    return DramChannel(GEO, TIMING, cell_array=cells), cells


def act_cmd(row: int) -> Command:
    return Command(CommandKind.ACT, bank=0, rows=(RowId.regular(row, 512),))


def act_c_cmd(row: int, copy_index: int = 0) -> Command:
    regular = RowId.regular(row, 512)
    timings = ActTimings(
        trcd=CROW.trcd_act_c,
        tras_full=CROW.tras_act_c_full,
        tras_early=CROW.tras_act_c_early,
        twr=CROW.twr_mra_early,
        twr_full=CROW.twr_mra_full,
    )
    return Command(
        CommandKind.ACT_C, bank=0,
        rows=(regular, RowId.copy(regular.subarray, copy_index)),
        timings=timings,
    )


def act_t_cmd(row: int, copy_index: int = 0, early: bool = True) -> Command:
    regular = RowId.regular(row, 512)
    timings = ActTimings(
        trcd=CROW.trcd_act_t_full,
        tras_full=CROW.tras_act_t_full,
        tras_early=CROW.tras_act_t_early if early else CROW.tras_act_t_full,
        twr=CROW.twr_mra_early,
        twr_full=CROW.twr_mra_full,
    )
    return Command(
        CommandKind.ACT_T, bank=0,
        rows=(regular, RowId.copy(regular.subarray, copy_index)),
        timings=timings,
    )


class TestRowClone:
    def test_act_c_copies_data(self):
        channel, cells = make_channel()
        source = RowId.regular(10, 512)
        cells.set_row_data(0, source, 0xDEADBEEF)
        channel.issue(act_c_cmd(10), 0)
        dest = RowId.copy(0, 0)
        assert np.array_equal(cells.row_data(0, dest), cells.row_data(0, source))
        assert cells.is_live(0, dest)

    def test_copy_of_dead_row_stays_dead(self):
        channel, cells = make_channel()
        channel.issue(act_c_cmd(10), 0)
        assert not cells.is_live(0, RowId.copy(0, 0))


class TestPartialRestoreSafety:
    def _open_pair_and_close_early(self, channel, cells, row=10):
        cells.set_row_data(0, RowId.regular(row, 512), 0x1234)
        channel.issue(act_c_cmd(row), 0)
        pre = Command(CommandKind.PRE, bank=0)
        channel.issue(pre, channel.earliest_issue(pre))  # early tRAS: partial

    def test_early_precharge_marks_pair_partial(self):
        channel, cells = make_channel()
        self._open_pair_and_close_early(channel, cells)
        assert cells.requires_pair(0, RowId.regular(10, 512))
        assert cells.requires_pair(0, RowId.copy(0, 0))

    def test_single_activation_of_partial_row_corrupts(self):
        """The exact corruption scenario of Section 4.1.4."""
        channel, cells = make_channel()
        self._open_pair_and_close_early(channel, cells)
        with pytest.raises(DataIntegrityError):
            channel.issue(act_cmd(10), channel.earliest_issue(act_cmd(10)))

    def test_pair_activation_of_partial_rows_is_safe(self):
        channel, cells = make_channel()
        self._open_pair_and_close_early(channel, cells)
        cmd = act_t_cmd(10)
        channel.issue(cmd, channel.earliest_issue(cmd))

    def test_full_restore_clears_pair_requirement(self):
        channel, cells = make_channel()
        self._open_pair_and_close_early(channel, cells)
        cmd = act_t_cmd(10, early=False)
        channel.issue(cmd, channel.earliest_issue(cmd))
        pre = Command(CommandKind.PRE, bank=0)
        channel.issue(pre, channel.earliest_issue(pre))
        assert not cells.requires_pair(0, RowId.regular(10, 512))
        # Now a single activation is safe again.
        channel.issue(act_cmd(10), channel.earliest_issue(act_cmd(10)))

    def test_act_t_on_mismatched_data_raises(self):
        channel, cells = make_channel()
        cells.set_row_data(0, RowId.regular(10, 512), 0xAAAA)
        cells.set_row_data(0, RowId.copy(0, 0), 0xBBBB)
        with pytest.raises(DataIntegrityError):
            channel.issue(act_t_cmd(10), 0)


class TestRetention:
    def test_fresh_row_reads_fine(self):
        channel, cells = make_channel()
        cells.set_row_data(0, RowId.regular(10, 512), 1)
        channel.issue(act_cmd(10), 0)

    def test_expired_row_raises(self):
        channel, cells = make_channel()
        cells.set_row_data(0, RowId.regular(10, 512), 1, now=0)
        too_late = ms_to_cycles(200.0, TIMING.clock_mhz)
        with pytest.raises(DataIntegrityError):
            cells.on_activate(act_cmd(10), too_late)

    def test_weak_row_fails_at_extended_interval(self):
        retention = RetentionModel(GEO, target_interval_ms=128.0,
                                   weak_rows_per_subarray=3, seed=5)
        channel, cells = make_channel(retention=retention)
        weak_index = sorted(retention.weak_regular_rows(0, 0, 0))[0]
        cells.set_row_data(0, RowId.regular(weak_index, 512), 7, now=0)
        at_127ms = ms_to_cycles(127.0, TIMING.clock_mhz)
        with pytest.raises(DataIntegrityError):
            cells.on_activate(act_cmd(weak_index), at_127ms)

    def test_strong_row_survives_extended_interval(self):
        retention = RetentionModel(GEO, target_interval_ms=128.0,
                                   weak_rows_per_subarray=3, seed=5)
        channel, cells = make_channel(retention=retention)
        weak = retention.weak_regular_rows(0, 0, 0)
        strong_index = next(i for i in range(512) if i not in weak)
        cells.set_row_data(0, RowId.regular(strong_index, 512), 7, now=0)
        at_127ms = ms_to_cycles(127.0, TIMING.clock_mhz)
        cells.on_activate(act_cmd(strong_index), at_127ms)

    def test_refresh_resets_retention_clock(self):
        channel, cells = make_channel()
        cells.set_row_data(0, RowId.regular(0, 512), 1, now=0)
        half = ms_to_cycles(40.0, TIMING.clock_mhz)
        cells.on_refresh(range(0, 8), half)
        # 40 + 50 ms from set, but only 50 ms since refresh: safe.
        cells.on_activate(act_cmd(0), half + ms_to_cycles(50.0, TIMING.clock_mhz))


class TestRetentionModel:
    def test_fixed_mode_plants_exact_count(self):
        retention = RetentionModel(GEO, weak_rows_per_subarray=3, seed=9)
        assert len(retention.weak_regular_rows(0, 0, 0)) == 3
        assert len(retention.weak_regular_rows(1, 3, 77)) == 3

    def test_sampled_mode_is_sparse(self):
        retention = RetentionModel(GEO, target_interval_ms=128.0, seed=9)
        total = sum(
            len(retention.weak_regular_rows(0, 0, s)) for s in range(32)
        )
        assert total < 32  # weak rows are rare at 128 ms

    def test_deterministic(self):
        a = RetentionModel(GEO, weak_rows_per_subarray=2, seed=3)
        b = RetentionModel(GEO, weak_rows_per_subarray=2, seed=3)
        assert a.weak_regular_rows(0, 1, 2) == b.weak_regular_rows(0, 1, 2)

    def test_weak_row_probability_matches_eq1(self):
        from repro.dram.retention import bit_error_rate

        retention = RetentionModel(GEO, target_interval_ms=256.0)
        ber = bit_error_rate(256.0)
        cells = GEO.row_size_bytes * 8
        expected = 1.0 - (1.0 - ber) ** cells
        assert retention.weak_row_probability == pytest.approx(expected)


class TestRowHammer:
    def test_hammering_flips_victim_bits(self):
        channel, cells = make_channel(hammer_threshold=50)
        victim = RowId.regular(11, 512)
        cells.set_row_data(0, victim, 0xFFFFFFFFFFFFFFFF)
        baseline = cells.row_data(0, victim).copy()
        now = 0
        for _ in range(50):
            channel.issue(act_cmd(10), channel.earliest_issue(act_cmd(10)))
            pre = Command(CommandKind.PRE, bank=0)
            channel.issue(pre, channel.earliest_issue(pre))
        assert cells.disturbance_flips > 0
        assert not np.array_equal(cells.row_data(0, victim), baseline)

    def test_refresh_resets_hammer_counter(self):
        channel, cells = make_channel(hammer_threshold=50)
        for _ in range(30):
            channel.issue(act_cmd(10), channel.earliest_issue(act_cmd(10)))
            pre = Command(CommandKind.PRE, bank=0)
            channel.issue(pre, channel.earliest_issue(pre))
        assert cells.hammer_count(0, 10) == 30
        cells.on_refresh(range(8, 16), 10**6)
        assert cells.hammer_count(0, 10) == 0

    def test_dead_neighbors_are_not_counted(self):
        channel, cells = make_channel(hammer_threshold=10)
        for _ in range(10):
            channel.issue(act_cmd(10), channel.earliest_issue(act_cmd(10)))
            pre = Command(CommandKind.PRE, bank=0)
            channel.issue(pre, channel.earliest_issue(pre))
        assert cells.disturbance_flips == 0
