"""Property-based cross-engine differential fuzzing.

The property: for *any* randomized scenario (workload mixes ×
mechanisms × CROW knobs × run lengths — the same scenario space the
conformance fuzzer sweeps), running under ``engine='batch'`` produces
exactly the event engine's telemetry export and final component state
tree. A failing example prints the scenario JSON, which replays via
``python -m repro check --scenario '<json>'`` (plus hypothesis's
``@reproduce_failure`` blob under the ci profile).
"""

import dataclasses

from hypothesis import HealthCheck, given, note, settings
from hypothesis import strategies as st

from repro.check.scenarios import random_scenario
from repro.sim.sweep import derive_trace_seed
from repro.sim.system import System
from repro.trace.stream import TraceStream


def _run(scenario, engine):
    """One full run under ``engine``; returns (result, final state)."""
    config = dataclasses.replace(
        scenario.to_config("report"), telemetry=True, engine=engine
    )
    traces = [
        TraceStream(name, derive_trace_seed(scenario.seed, core))
        for core, name in enumerate(scenario.workloads)
    ]
    system = System(config, traces)
    result = system.run(
        scenario.instructions,
        scenario.warmup_instructions,
        prewarm_accesses=10_000,
    )
    return result, system.state_dict(), system.check_report()


@given(case_seed=st.integers(0, 2**32 - 1))
@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_scenario_is_engine_invariant(case_seed):
    scenario = random_scenario(case_seed)
    note(f"scenario: {scenario.to_json()}")
    event_result, event_state, event_report = _run(scenario, "event")
    batch_result, batch_state, batch_report = _run(scenario, "batch")

    # The full telemetry export and every SimResult field, not just the
    # digest — a digest collision cannot hide a divergence here.
    assert batch_result.telemetry_digest() == event_result.telemetry_digest()
    assert dataclasses.asdict(batch_result) == dataclasses.asdict(
        event_result
    )
    # The complete component state tree: cores, caches, VM, controllers,
    # mechanisms, event queue, RNG positions.
    assert batch_state == event_state
    # Conformance observations must agree too (report mode collects
    # rather than raises, so both engines' command streams are compared
    # violation-for-violation).
    assert batch_report.ok == event_report.ok
    assert len(batch_report.violations) == len(event_report.violations)
