"""Property-based fuzzing of snapshot/restore equivalence.

The property the whole subsystem stands on, asserted over randomized
scenarios (workload mixes × mechanisms × CROW knobs × run lengths):
snapshot a run at a random mid-flight cycle, restore it **in a fresh
process** (``python -m repro snapshot resume``, so nothing leaks through
interpreter state — only the container bytes cross over), and the final
telemetry digest is byte-identical to the uninterrupted run.

Example budgets are pinned (each example simulates twice plus one
subprocess); under ``HYPOTHESIS_PROFILE=ci`` the tests inherit the ci
profile's derandomization and ``print_blob`` (see tests/conftest.py).
"""

import dataclasses
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, note, settings
from hypothesis import strategies as st

from repro.check.scenarios import random_scenario
from repro.sim.sweep import derive_trace_seed
from repro.sim.system import System
from repro.trace.stream import TraceStream

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _build(scenario):
    """One System for the scenario, telemetry attached for the digest."""
    config = dataclasses.replace(
        scenario.to_config("report"), telemetry=True
    )
    traces = [
        TraceStream(name, derive_trace_seed(scenario.seed, core))
        for core, name in enumerate(scenario.workloads)
    ]
    return System(config, traces)


def _run(scenario, system, **snapshot_kwargs):
    return system.run(
        scenario.instructions,
        scenario.warmup_instructions,
        prewarm_accesses=10_000,
        **snapshot_kwargs,
    )


def _resume_in_fresh_process(path):
    """Resume via the CLI in a child interpreter; return the digest."""
    env = dict(os.environ, PYTHONPATH=_SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "snapshot", "resume", str(path)],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    match = re.search(r"digest=(\w+)", proc.stdout)
    assert match, f"no digest in CLI output: {proc.stdout!r}"
    return match.group(1)


@given(case_seed=st.integers(0, 2**32 - 1), fraction=st.floats(0.05, 0.95))
@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_scenario_snapshot_resumes_identically(case_seed, fraction):
    scenario = random_scenario(case_seed)
    note(f"scenario: {scenario.to_json()}")
    straight = _run(scenario, _build(scenario))
    digest = straight.telemetry_digest()
    assert digest is not None

    # Snapshot somewhere strictly inside the run: the clock advances in
    # event-sized jumps, so the guard fires at the first step that
    # reaches the target cycle.
    at_cycle = max(1, int(straight.cycles * fraction))
    note(f"snapshot at cycle {at_cycle} of {straight.cycles}")
    with tempfile.TemporaryDirectory() as tmp:
        snap = Path(tmp) / "fuzz.snap"
        snapshotted = _run(
            scenario, _build(scenario),
            snapshot_at_cycle=at_cycle, snapshot_path=snap,
        )
        # the snapshot hook itself must not perturb the host run
        assert snapshotted.telemetry_digest() == digest
        assert snap.is_file()
        assert _resume_in_fresh_process(snap) == digest
