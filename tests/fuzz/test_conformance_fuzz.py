"""Property-based fuzzing of the simulator against the conformance oracle.

Three properties:

* every randomized scenario (workload mix × mechanism × density ×
  refresh window × CROW knobs) simulates without a single protocol
  violation in strict mode;
* the device's own ``earliest_issue`` scheduling and the independent
  shadow checker agree on randomly-generated legal command streams
  (a differential test between the two implementations of the spec);
* random timing-parameter sets either construct or raise ``ConfigError``
  — never an arbitrary exception, and never an impossible constraint
  set accepted.

Scenarios are built componentwise with ``st.builds`` so hypothesis
shrinks a failing case to a minimal one. Each failure prints (via
``note``) the exact ``python -m repro check --scenario`` command that
reproduces it outside pytest, plus hypothesis' own ``@reproduce_failure``
blob under the CI profile (see tests/conftest.py).
"""

import random

from hypothesis import HealthCheck, given, note, settings
from hypothesis import strategies as st

from repro.check import ProtocolChecker
from repro.check.scenarios import SCENARIO_WORKLOADS, Scenario, run_scenario
from repro.dram.commands import Command, CommandKind, RowId
from repro.dram.device import DramChannel
from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParameters
from repro.errors import ConfigError
from repro.sim.config import MECHANISMS

scenarios = st.builds(
    Scenario,
    workloads=st.lists(
        st.sampled_from(SCENARIO_WORKLOADS), min_size=1, max_size=2
    ).map(tuple),
    mechanism=st.sampled_from(MECHANISMS),
    density_gbit=st.sampled_from((8, 16)),
    refresh_window_ms=st.sampled_from((32.0, 64.0)),
    refresh_enabled=st.booleans(),
    copy_rows=st.sampled_from((2, 8)),
    evict_partial=st.sampled_from(("bypass", "restore")),
    allow_partial_restore=st.booleans(),
    reduced_twr=st.booleans(),
    instructions=st.integers(500, 2000),
    warmup_instructions=st.integers(0, 300),
    seed=st.integers(1, 10_000),
)


@given(scenario=scenarios)
@settings(suppress_health_check=[HealthCheck.too_slow])
def test_randomized_scenarios_are_conformant(scenario):
    note(
        "reproduce with: python -m repro check "
        f"--scenario '{scenario.to_json()}'"
    )
    result, report = run_scenario(scenario, mode="strict")
    assert report.ok
    assert result.cycles > 0


@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(40, 120))
@settings(suppress_health_check=[HealthCheck.too_slow])
def test_device_and_checker_agree_on_legal_streams(seed, steps):
    """Differential test: streams the device schedules pass the oracle.

    A random walk picks commands, legalizes them against the device's
    *state* (open/closed banks), and issues each at the device's own
    ``earliest_issue`` plus jitter. The device and the checker implement
    the timing spec independently — any stream the device accepts that
    the checker flags (strict mode raises here) is a bug in one of them.
    """
    geometry = DramGeometry(channels=1, rows_per_bank=8192)
    timing = TimingParameters.lpddr4()
    channel = DramChannel(geometry, timing)
    checker = ProtocolChecker(
        geometry, timing, expect_refresh=False, mode="strict"
    )
    channel.checker = checker
    rng = random.Random(seed)
    banks = geometry.banks_per_channel
    rows = geometry.rows_per_subarray

    for _ in range(steps):
        action = rng.choice(("act", "rd", "rd", "wr", "pre", "ref"))
        bank = rng.randrange(banks)
        is_open = channel.open_rows(bank) is not None
        if action == "ref":
            open_bank = next(
                (b for b in range(banks) if channel.open_rows(b) is not None),
                None,
            )
            if open_bank is not None:
                action, bank, is_open = "pre", open_bank, True
        if action in ("rd", "wr", "pre") and not is_open:
            action = "act"
        elif action == "act" and is_open:
            action = rng.choice(("rd", "wr", "pre"))
        if action == "act":
            command = Command(
                kind=CommandKind.ACT,
                bank=bank,
                rows=(RowId.regular(rng.randrange(rows), rows),),
            )
        elif action == "rd":
            command = Command(kind=CommandKind.RD, bank=bank, rows=(), col=0)
        elif action == "wr":
            command = Command(kind=CommandKind.WR, bank=bank, rows=(), col=0)
        elif action == "pre":
            command = Command(kind=CommandKind.PRE, bank=bank, rows=())
        else:
            command = Command(kind=CommandKind.REF, bank=0, rows=())
        at = channel.earliest_issue(command) + rng.randrange(0, 3)
        channel.issue(command, at)
    assert checker.report.ok
    assert checker.report.commands == steps


@given(
    trcd=st.integers(1, 100),
    tras=st.integers(1, 300),
    trp=st.integers(1, 100),
    trrd=st.integers(1, 100),
    tfaw=st.integers(1, 300),
    trfc=st.integers(1, 2000),
    trefi=st.integers(1, 20_000),
)
def test_timing_parameters_validate_or_reject(
    trcd, tras, trp, trrd, tfaw, trfc, trefi
):
    """Random constraint sets are accepted or rejected, never crash."""
    try:
        timing = TimingParameters(
            trcd=trcd, tras=tras, trp=trp, trrd=trrd,
            tfaw=tfaw, trfc=trfc, trefi=trefi,
        )
    except ConfigError:
        assert tras < trcd or tfaw < trrd or trefi <= trfc
    else:
        assert timing.tras >= timing.trcd
        assert timing.tfaw >= timing.trrd
        assert timing.trefi > timing.trfc
        assert timing.trc == tras + trp
