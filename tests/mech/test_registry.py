"""The mechanism plugin registry: lookup, ordering, error paths."""

import pytest

from repro.errors import ConfigError
from repro.mech import (
    MechanismPlugin,
    get_plugin,
    mechanism_names,
    register_mechanism,
)
from repro.__main__ import main

#: The twelve pre-plugin names, in their historical order — seeded
#: samplers (fuzz scenarios, sweeps) rely on this stable prefix.
HISTORICAL = (
    "baseline",
    "crow-cache",
    "crow-ref",
    "crow-combined",
    "crow-hammer",
    "crow-full",
    "ideal-crow-cache",
    "ideal",
    "no-refresh",
    "tl-dram",
    "salp",
    "chargecache",
)


class TestRegistry:
    def test_historical_names_keep_registration_order(self):
        assert mechanism_names()[: len(HISTORICAL)] == HISTORICAL

    def test_related_work_plugins_registered(self):
        names = mechanism_names()
        assert {"hira", "cnc-prac", "clr-dram"} <= set(names)

    def test_get_plugin_returns_the_singleton(self):
        assert get_plugin("crow-cache") is get_plugin("crow-cache")
        assert get_plugin("hira").name == "hira"

    def test_unknown_name_lists_registered_mechanisms(self):
        with pytest.raises(ConfigError) as excinfo:
            get_plugin("magic")
        message = str(excinfo.value)
        assert "unknown mechanism 'magic'" in message
        for name in ("baseline", "crow-cache", "hira", "clr-dram"):
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError) as excinfo:

            @register_mechanism("baseline")
            class Impostor(MechanismPlugin):
                def build(self, ctx):
                    raise AssertionError("never built")

        message = str(excinfo.value)
        assert "'baseline' is already registered" in message
        assert "BaselinePlugin" in message
        # The failed registration must not have corrupted the registry.
        from repro.mech.builtin import BaselinePlugin

        assert type(get_plugin("baseline")) is BaselinePlugin

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            register_mechanism("")


class TestConfigSurface:
    def test_system_config_validates_via_registry(self):
        from repro.sim.config import SystemConfig

        with pytest.raises(ConfigError) as excinfo:
            SystemConfig(mechanism="nope")
        assert "registered mechanisms" in str(excinfo.value)

    def test_scenario_validates_via_registry(self):
        from repro.check.scenarios import Scenario

        with pytest.raises(ConfigError) as excinfo:
            Scenario(mechanism="nope")
        assert "registered mechanisms" in str(excinfo.value)

    def test_mechanisms_snapshot_matches_registry(self):
        from repro.sim.config import MECHANISMS

        assert MECHANISMS == mechanism_names()


class TestCliSurface:
    def test_mechanisms_listing(self, capsys):
        assert main(["mechanisms"]) == 0
        out = capsys.readouterr().out
        for name in mechanism_names():
            assert name in out

    def test_campaign_rejects_unknown_mechanism(self, capsys, tmp_path):
        code = main(
            ["campaign", "libq", "--mechanisms", "nope",
             "--instructions", "1000", "--warmup", "100",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown mechanism 'nope'" in err
        assert "registered mechanisms" in err
