"""Unit tests for the related-work mechanism plugins.

Small geometry (64 rows/bank, 16 rows/subarray) and low thresholds so
every policy transition — HiRA schedule advance, CnC-PRAC alert /
mitigation / coalescing, CLR-DRAM promotion / demotion — is exercised
directly, without a full-system run.
"""

from repro.controller.mechanism import IDLE, ActivationPlan
from repro.dram.commands import Command, CommandKind, RowId
from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParameters
from repro.mech.clrdram import ClrDram, ClrInvariant, fast_timings
from repro.mech.cncprac import CncPrac, PracInvariant
from repro.mech.hira import (
    COVERAGE_SLACK_INTERVALS,
    HiddenRowActivation,
    HiraRefreshInvariant,
    hira_interval,
)

GEOMETRY = DramGeometry(
    channels=1,
    rows_per_bank=64,
    rows_per_subarray=16,
    copy_rows_per_subarray=0,
)
TIMING = TimingParameters.lpddr4(density_gbit=8)
RPS = GEOMETRY.rows_per_subarray
BANKS = GEOMETRY.banks_per_channel


def plain_plan(row):
    return ActivationPlan(
        kind=CommandKind.ACT, rows=(RowId.regular(row, RPS),)
    )


def act(bank, row, timings=None):
    return Command(
        CommandKind.ACT,
        bank=bank,
        rows=(RowId.regular(row, RPS),),
        timings=timings,
    )


class _RecordingChecker:
    """Captures invariant violations instead of raising."""

    def __init__(self):
        self.constraints = []

    def violate(self, cycle, bank, constraint, command, prior="",
                required=None, actual=None, message=""):
        self.constraints.append(constraint)


class TestHira:
    def test_interval_paces_full_window_coverage(self):
        # rows_per_ref = 1 (64 rows < one REF window), 8 banks:
        # 8 refresh ACTs per tREFI.
        assert hira_interval(GEOMETRY, TIMING) == TIMING.trefi // BANKS

    def test_schedule_is_bank_major(self):
        mech = HiddenRowActivation(GEOMETRY, TIMING)
        interval = mech.interval
        seen = []
        now = interval
        for _ in range(BANKS + 1):
            bank, plan = mech.urgent_plan(now)
            seen.append((bank, plan.rows[0].bank_row(RPS)))
            mech.on_activate(bank, plan, now)
            now = mech.next_wake(now)
        # One row-0 activation in every bank before any bank repeats.
        assert seen[:BANKS] == [(b, 0) for b in range(BANKS)]
        assert seen[BANKS] == (0, 1)
        assert mech.refresh_acts == BANKS + 1

    def test_not_due_means_no_urgent_plan(self):
        mech = HiddenRowActivation(GEOMETRY, TIMING)
        assert mech.urgent_plan(mech.interval - 1) is None
        assert mech.next_wake(0) == mech.interval

    def test_foreign_plan_does_not_advance_schedule(self):
        mech = HiddenRowActivation(GEOMETRY, TIMING)
        mech.on_activate(0, plain_plan(0), mech.interval)
        assert mech.refresh_acts == 0
        assert mech.urgent_plan(mech.interval) is not None

    def test_disabled_refresh_idles(self):
        mech = HiddenRowActivation(GEOMETRY, TIMING, refresh_enabled=False)
        assert mech.urgent_plan(10 * mech.interval) is None
        assert mech.next_wake(0) == IDLE

    def test_state_round_trip(self):
        mech = HiddenRowActivation(GEOMETRY, TIMING)
        for _ in range(3):
            now = mech.next_wake(0)
            bank, plan = mech.urgent_plan(now)
            mech.on_activate(bank, plan, now)
        clone = HiddenRowActivation(GEOMETRY, TIMING)
        clone.load_state_dict(mech.state_dict())
        assert clone.state_dict() == mech.state_dict()
        assert clone.urgent_plan(clone.next_wake(0))[0] == 3  # bank cursor


class TestHiraInvariant:
    def test_matching_acts_advance_coverage(self):
        inv = HiraRefreshInvariant(GEOMETRY, TIMING, enabled=True)
        checker = _RecordingChecker()
        interval = inv.interval
        for i in range(2 * BANKS):
            inv.on_command(checker, i * interval, act(i % BANKS, i // BANKS))
        inv.finalize(checker, 2 * BANKS * interval)
        assert checker.constraints == []

    def test_missing_coverage_flagged(self):
        inv = HiraRefreshInvariant(GEOMETRY, TIMING, enabled=True)
        checker = _RecordingChecker()
        end = (COVERAGE_SLACK_INTERVALS + 5) * inv.interval
        inv.finalize(checker, end)
        assert checker.constraints == ["hira-refresh-coverage"]

    def test_disabled_invariant_never_flags(self):
        inv = HiraRefreshInvariant(GEOMETRY, TIMING, enabled=False)
        checker = _RecordingChecker()
        inv.finalize(checker, 100 * inv.interval)
        assert checker.constraints == []


class TestCncPrac:
    def make(self, threshold=3):
        return CncPrac(GEOMETRY, TIMING, threshold=threshold, blast_radius=1)

    def hammer(self, mech, bank, row, times):
        for _ in range(times):
            mech.on_activate(bank, plain_plan(row), 0)

    def test_alert_queues_both_neighbours(self):
        mech = self.make()
        self.hammer(mech, 0, 5, 3)
        assert mech.alerts == 1
        assert list(mech.pending) == [(0, 4), (0, 6)]
        assert mech.counters.get((0, 5), 0) == 0

    def test_urgent_plan_serves_oldest_victim(self):
        mech = self.make()
        self.hammer(mech, 0, 5, 3)
        bank, plan = mech.urgent_plan(0)
        assert bank == 0
        assert plan.rows[0].bank_row(RPS) == 4
        assert plan.timings is None  # full-latency restore
        mech.on_activate(bank, plan, 1)
        assert mech.mitigations == 1
        assert list(mech.pending) == [(0, 6)]

    def test_demand_activation_retires_pending_victim(self):
        mech = self.make()
        self.hammer(mech, 0, 5, 3)
        mech.on_activate(0, plain_plan(6), 2)
        assert mech.mitigations == 1
        assert (0, 6) not in mech.pending

    def test_coalescing_counts_duplicate_victims(self):
        mech = self.make()
        self.hammer(mech, 0, 5, 3)   # pending: 4, 6
        self.hammer(mech, 0, 7, 3)   # victims 6, 8; 6 coalesces
        assert mech.coalesced == 1
        assert list(mech.pending) == [(0, 4), (0, 6), (0, 8)]

    def test_edge_rows_clip_blast_radius(self):
        mech = self.make()
        self.hammer(mech, 0, 0, 3)
        assert list(mech.pending) == [(0, 1)]

    def test_refresh_absorbs_pending_and_counters(self):
        mech = self.make()
        self.hammer(mech, 0, 5, 2)     # below threshold: counter only
        self.hammer(mech, 1, 5, 3)     # alert in bank 1: pending 4, 6
        mech.on_refresh(range(4, 6), 100)
        assert (0, 5) not in mech.counters
        assert (1, 4) not in mech.pending
        assert (1, 6) in mech.pending
        assert mech.ref_absorbed == 1

    def test_state_round_trip(self):
        mech = self.make()
        self.hammer(mech, 0, 5, 4)
        clone = self.make()
        clone.load_state_dict(mech.state_dict())
        assert clone.state_dict() == mech.state_dict()
        assert clone.urgent_plan(0)[1].rows == mech.urgent_plan(0)[1].rows


class TestPracInvariant:
    def make(self):
        return PracInvariant(GEOMETRY, TIMING, threshold=3, blast_radius=1)

    def test_timely_mitigation_passes(self):
        inv = self.make()
        checker = _RecordingChecker()
        for i in range(3):
            inv.on_command(checker, i, act(0, 5))
        inv.on_command(checker, 10, act(0, 4))
        inv.on_command(checker, 11, act(0, 6))
        inv.finalize(checker, 10 * TIMING.trefi)
        assert checker.constraints == []

    def test_missed_deadline_flagged_in_stream(self):
        inv = self.make()
        checker = _RecordingChecker()
        for i in range(3):
            inv.on_command(checker, i, act(0, 5))
        late = inv.deadline_cycles + 100
        inv.on_command(checker, late, act(3, 0))
        assert checker.constraints == ["cnc-prac-mitigation-deadline"]

    def test_missed_deadline_flagged_at_finalize(self):
        inv = self.make()
        checker = _RecordingChecker()
        for i in range(3):
            inv.on_command(checker, i, act(0, 5))
        inv.finalize(checker, inv.deadline_cycles + 100)
        # Both queued victims expired unmitigated.
        assert checker.constraints == ["cnc-prac-mitigation-deadline"] * 2

    def test_refresh_clears_pending(self):
        inv = self.make()
        checker = _RecordingChecker()
        for i in range(3):
            inv.on_command(checker, i, act(0, 5))
        # The scenario cursor starts at row 0; one REF covers one row
        # here (64 rows/bank), so walk it over the victims.
        for i in range(7):
            inv.on_command(checker, 10 + i, Command(CommandKind.REF))
        inv.finalize(checker, inv.deadline_cycles + 100)
        assert checker.constraints == []

    def test_state_round_trip(self):
        inv = self.make()
        checker = _RecordingChecker()
        for i in range(3):
            inv.on_command(checker, i, act(0, 5))
        clone = self.make()
        clone.load_state_dict(inv.state_dict())
        assert clone.state_dict() == inv.state_dict()


class TestClrDram:
    def make(self, threshold=2):
        return ClrDram(GEOMETRY, TIMING, promote_threshold=threshold)

    def promote(self, mech, bank, row):
        for _ in range(mech.promote_threshold):
            plan = mech.plan_activation(bank, row, 0)
            assert plan.timings is None
            mech.on_activate(bank, plan, 0)

    def test_promotion_after_threshold_activations(self):
        mech = self.make()
        self.promote(mech, 0, 4)
        assert mech.promotions == 1
        assert mech.coupled[(0, 2)] == 4
        plan = mech.plan_activation(0, 4, 0)
        assert plan.timings is not None
        assert plan.timings.trcd < TIMING.trcd
        assert plan.timings.tras_full < TIMING.tras

    def test_fast_activations_counted_not_recounted(self):
        mech = self.make()
        self.promote(mech, 0, 4)
        plan = mech.plan_activation(0, 4, 0)
        mech.on_activate(0, plan, 0)
        assert mech.fast_acts == 1
        assert mech.counters == {}

    def test_partner_touch_demotes_the_pair(self):
        mech = self.make()
        self.promote(mech, 0, 4)
        mech.on_activate(0, plain_plan(5), 0)
        assert mech.demotions == 1
        assert (0, 2) not in mech.coupled
        assert mech.plan_activation(0, 4, 0).timings is None

    def test_partner_counters_cleared_on_promotion(self):
        mech = self.make()
        mech.on_activate(0, plain_plan(5), 0)   # partner accumulates
        self.promote(mech, 0, 4)
        assert (0, 5) not in mech.counters

    def test_pairs_are_per_bank(self):
        mech = self.make()
        self.promote(mech, 0, 4)
        assert mech.plan_activation(1, 4, 0).timings is None

    def test_state_round_trip(self):
        mech = self.make()
        self.promote(mech, 0, 4)
        mech.on_activate(0, plain_plan(9), 0)
        clone = self.make()
        clone.load_state_dict(mech.state_dict())
        assert clone.state_dict() == mech.state_dict()
        assert clone.plan_activation(0, 4, 0).timings is not None


class TestClrInvariant:
    def make(self):
        return ClrInvariant(GEOMETRY, TIMING, threshold=2)

    def test_promoted_fast_act_accepted(self):
        inv = self.make()
        checker = _RecordingChecker()
        fast = fast_timings(TIMING)
        inv.on_command(checker, 0, act(0, 4))
        inv.on_command(checker, 1, act(0, 4))
        inv.on_command(checker, 2, act(0, 4, timings=fast))
        assert checker.constraints == []

    def test_uncoupled_fast_act_flagged(self):
        inv = self.make()
        checker = _RecordingChecker()
        inv.on_command(checker, 0, act(0, 6, timings=fast_timings(TIMING)))
        assert checker.constraints == ["clr-fast-act-uncoupled"]

    def test_wrong_override_timings_flagged(self):
        inv = self.make()
        checker = _RecordingChecker()
        inv.on_command(checker, 0, act(0, 4))
        inv.on_command(checker, 1, act(0, 4))
        wrong = fast_timings(TIMING)
        wrong = type(wrong)(
            trcd=wrong.trcd + 1,
            tras_full=wrong.tras_full,
            tras_early=wrong.tras_early,
            twr=wrong.twr,
        )
        inv.on_command(checker, 2, act(0, 4, timings=wrong))
        assert "clr-timing-override" in checker.constraints

    def test_demotion_mirrored(self):
        inv = self.make()
        checker = _RecordingChecker()
        inv.on_command(checker, 0, act(0, 4))
        inv.on_command(checker, 1, act(0, 4))
        inv.on_command(checker, 2, act(0, 5))   # partner: demote
        inv.on_command(checker, 3, act(0, 4, timings=fast_timings(TIMING)))
        assert checker.constraints == ["clr-fast-act-uncoupled"]


class TestTelemetryNamespace:
    def test_hira_stats_exported_under_mech_group(self):
        from repro import SystemConfig, run_workload

        result = run_workload(
            "libq",
            SystemConfig(cores=1, mechanism="hira", seed=1, telemetry=True),
            instructions=2_000,
            warmup_instructions=500,
        )
        hira = result.telemetry["mech"]["hira"]
        assert hira["hira_refresh_acts"]["value"] > 0

    def test_legacy_mechanisms_export_no_mech_group(self):
        from repro import SystemConfig, run_workload

        result = run_workload(
            "libq",
            SystemConfig(
                cores=1, mechanism="crow-cache", seed=1, telemetry=True
            ),
            instructions=2_000,
            warmup_instructions=500,
        )
        assert "mech" not in result.telemetry
