"""Tests for the MRA power and decoder-area models (Figure 7, Figure 11b)."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit import DecoderAreaModel, activation_power_overhead
from repro.errors import ConfigError


class TestActivationPower:
    def test_single_row_has_no_overhead(self):
        assert activation_power_overhead(1) == pytest.approx(1.0)

    def test_two_row_overhead_matches_paper(self):
        """Paper Section 6.2: ACT-t/ACT-c consume 5.8% more power."""
        assert activation_power_overhead(2) == pytest.approx(1.058)

    def test_overhead_grows_with_rows(self):
        values = [activation_power_overhead(n) for n in range(1, 10)]
        assert values == sorted(values)

    def test_rejects_zero_rows(self):
        with pytest.raises(ConfigError):
            activation_power_overhead(0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigError):
            activation_power_overhead(2, per_row_overhead=-0.1)

    @given(n=st.integers(min_value=1, max_value=64))
    def test_overhead_at_least_unity(self, n):
        assert activation_power_overhead(n) >= 1.0


class TestDecoderArea:
    @pytest.fixture
    def area(self) -> DecoderAreaModel:
        return DecoderAreaModel()

    def test_local_decoder_anchor(self, area):
        """512-row local decoder occupies ~200.9 um^2 (paper Section 6.2)."""
        assert area.decoder_area_um2(512) == pytest.approx(200.9, rel=0.01)

    def test_copy_decoder_anchor(self, area):
        """8-copy-row decoder occupies ~9.6 um^2 (paper Section 6.2)."""
        assert area.decoder_area_um2(8) == pytest.approx(9.6, rel=0.01)

    def test_crow8_decoder_overhead(self, area):
        assert area.copy_decoder_overhead(8) == pytest.approx(0.048, abs=0.002)

    def test_crow8_chip_overhead(self, area):
        """Paper headline: 0.48% DRAM chip area overhead for CROW-8."""
        assert area.crow_chip_overhead(8) == pytest.approx(0.0048, abs=0.0002)

    def test_crow8_capacity_overhead(self, area):
        """Paper headline: eight copy rows reserve 1.6% of capacity."""
        assert area.crow_capacity_overhead(8) == pytest.approx(0.0154, abs=0.001)

    def test_area_grows_with_copy_rows(self, area):
        overheads = [area.crow_chip_overhead(n) for n in (1, 2, 4, 8, 16, 256)]
        assert overheads == sorted(overheads)

    def test_rejects_zero_rows(self, area):
        with pytest.raises(ConfigError):
            area.decoder_area_um2(0)


class TestBaselineAreas:
    @pytest.fixture
    def area(self) -> DecoderAreaModel:
        return DecoderAreaModel()

    def test_tldram8_matches_paper(self, area):
        """Figure 11b: TL-DRAM-8 incurs 6.9% chip area overhead."""
        assert area.tldram_chip_overhead(8) == pytest.approx(0.069, abs=0.003)

    def test_tldram_much_more_expensive_than_crow(self, area):
        assert area.tldram_chip_overhead(8) > 10 * area.crow_chip_overhead(8)

    def test_salp_128_matches_paper(self, area):
        """Figure 11b: SALP-128 is ~0.6% (logic only, no extra stripes)."""
        assert area.salp_chip_overhead(128) == pytest.approx(0.006, abs=0.002)

    def test_salp_256_matches_paper(self, area):
        """Figure 11b: SALP-256 costs 28.9% (doubled sense-amp stripes)."""
        assert area.salp_chip_overhead(256) == pytest.approx(0.289, abs=0.01)

    def test_salp_512_matches_paper(self, area):
        """Section 8.1.4: SALP-512 costs 84.5% chip area."""
        assert area.salp_chip_overhead(512) == pytest.approx(0.845, abs=0.02)

    def test_salp_requires_power_of_two(self, area):
        with pytest.raises(ConfigError):
            area.salp_chip_overhead(100)


class TestStructuredGuardErrors:
    """Guard failures name the offending field and value.

    The estimator framework surfaces these messages verbatim inside
    :class:`repro.errors.EstimateError` reasons, so they must identify
    what was wrong without the caller re-deriving it.
    """

    @pytest.fixture
    def area(self) -> DecoderAreaModel:
        return DecoderAreaModel()

    def test_negative_copy_rows_names_field_and_value(self, area):
        with pytest.raises(
            ConfigError, match=r"copy_rows must be >= 0, got -3"
        ):
            area.crow_capacity_overhead(-3)

    def test_zero_regular_rows_explains_the_constraint(self, area):
        with pytest.raises(
            ConfigError, match=r"regular_rows must be >= 1, got 0"
        ):
            area.crow_capacity_overhead(8, regular_rows=0)

    def test_zero_copy_rows_is_a_valid_degenerate_substrate(self, area):
        assert area.crow_capacity_overhead(0) == 0.0

    def test_non_power_of_two_salp_names_the_value(self, area):
        with pytest.raises(
            ConfigError, match=r"power of two, got 100"
        ):
            area.salp_chip_overhead(100)

    def test_zero_subarrays_names_field_and_value(self, area):
        with pytest.raises(
            ConfigError, match=r"subarrays_per_bank must be >= 1, got 0"
        ):
            area.salp_chip_overhead(0)

    def test_zero_decoder_rows_names_the_value(self, area):
        with pytest.raises(ConfigError, match=r"rows must be >= 1, got 0"):
            area.decoder_area_um2(0)
