"""Tests for Monte-Carlo process-variation analysis."""

import pytest

from repro.circuit import MonteCarloAnalyzer, MonteCarloResult
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def analyzer() -> MonteCarloAnalyzer:
    # 500 iterations keeps the unit-test suite fast; the benchmark harness
    # runs the paper's full 10^4.
    return MonteCarloAnalyzer(iterations=500, seed=7)


class TestAnalyze:
    def test_reports_all_quantities(self, analyzer):
        results = analyzer.analyze(n_rows=2)
        assert set(results) == {"trcd", "tras", "twr"}
        for result in results.values():
            assert isinstance(result, MonteCarloResult)

    def test_worst_exceeds_mean(self, analyzer):
        for result in analyzer.analyze(n_rows=2).values():
            assert result.worst_ns >= result.mean_ns >= result.best_ns

    def test_variation_is_bounded_by_margin(self, analyzer):
        """5% parameter margins cannot produce >25% latency spread."""
        for result in analyzer.analyze(n_rows=2).values():
            assert result.spread < 1.25

    def test_deterministic_given_seed(self):
        first = MonteCarloAnalyzer(iterations=100, seed=42).analyze(2)
        second = MonteCarloAnalyzer(iterations=100, seed=42).analyze(2)
        assert first["trcd"].worst_ns == second["trcd"].worst_ns

    def test_different_seeds_differ(self):
        first = MonteCarloAnalyzer(iterations=100, seed=1).analyze(2)
        second = MonteCarloAnalyzer(iterations=100, seed=2).analyze(2)
        assert first["trcd"].worst_ns != second["trcd"].worst_ns


class TestWorstCaseFactors:
    def test_worst_case_keeps_large_trcd_benefit(self, analyzer):
        """Even the worst process corner keeps most of the -38% benefit."""
        factors = analyzer.worst_case_factors()
        assert factors.act_t_full_trcd < 0.72

    def test_worst_case_factors_validate(self, analyzer):
        analyzer.worst_case_factors().validate()

    def test_worst_case_is_more_conservative_than_nominal(self, analyzer):
        from repro.circuit import derive_crow_timing_factors

        nominal = derive_crow_timing_factors()
        worst = analyzer.worst_case_factors()
        assert worst.act_t_full_trcd >= nominal.act_t_full_trcd - 0.01


class TestConstruction:
    def test_rejects_bad_margin(self):
        with pytest.raises(ConfigError):
            MonteCarloAnalyzer(margin=0.6)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigError):
            MonteCarloAnalyzer(iterations=0)
