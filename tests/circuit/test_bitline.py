"""Unit and property tests for the bitline charge-sharing model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.circuit import BitlineModel, TechnologyParameters
from repro.errors import ConfigError


@pytest.fixture
def bitline() -> BitlineModel:
    return BitlineModel()


class TestDeltaV:
    def test_single_cell_swing_is_realistic(self, bitline):
        """A single fully-charged cell perturbs the bitline by ~100 mV."""
        delta = bitline.delta_v(1, 1.0)
        assert 0.05 < delta < 0.15

    def test_two_cells_increase_swing(self, bitline):
        assert bitline.delta_v(2, 1.0) > bitline.delta_v(1, 1.0)

    def test_swing_saturates_below_half_vdd(self, bitline):
        """Even infinitely many cells cannot push past Vdd/2 swing."""
        assert bitline.delta_v(1000, 1.0) < bitline.tech.vdd_volts / 2.0

    def test_half_charged_cell_produces_no_swing(self, bitline):
        assert bitline.delta_v(1, 0.5) == pytest.approx(0.0, abs=1e-12)

    def test_discharged_cell_produces_negative_swing(self, bitline):
        assert bitline.delta_v(1, 0.0) < 0.0

    def test_zero_cells_rejected(self, bitline):
        with pytest.raises(ConfigError):
            bitline.delta_v(0, 1.0)

    @given(n=st.integers(min_value=1, max_value=32))
    def test_swing_monotonic_in_cell_count(self, n):
        bitline = BitlineModel()
        assert bitline.delta_v(n + 1, 1.0) > bitline.delta_v(n, 1.0)

    @given(
        f_low=st.floats(min_value=0.55, max_value=0.9),
        gap=st.floats(min_value=0.01, max_value=0.1),
    )
    def test_swing_monotonic_in_charge(self, f_low, gap):
        bitline = BitlineModel()
        assert bitline.delta_v(2, f_low + gap) > bitline.delta_v(2, f_low)


class TestSensibility:
    def test_full_cell_is_sensible(self, bitline):
        assert bitline.sensible(1, 1.0)

    def test_nearly_drained_cell_is_not_sensible(self, bitline):
        assert not bitline.sensible(1, 0.55)

    def test_minimum_fraction_is_boundary(self, bitline):
        f_min = bitline.minimum_cell_fraction(1)
        delta_at_min = bitline.delta_v(1, f_min)
        assert delta_at_min == pytest.approx(bitline.tech.sense_threshold_v)

    def test_two_cells_lower_the_charge_floor(self, bitline):
        """Duplicated data remains sensible at lower per-cell charge."""
        assert bitline.minimum_cell_fraction(2) < bitline.minimum_cell_fraction(1)


class TestRetention:
    def test_single_full_cell_retains_for_base_window(self, bitline):
        retention = bitline.retention_time_ms(1, bitline.tech.full_restore_fraction)
        assert retention == pytest.approx(bitline.tech.retention_base_ms, rel=1e-6)

    def test_two_full_cells_retain_longer(self, bitline):
        single = bitline.retention_time_ms(1, bitline.tech.full_restore_fraction)
        double = bitline.retention_time_ms(2, bitline.tech.full_restore_fraction)
        assert double > single

    def test_partially_restored_pair_still_meets_window(self, bitline):
        """The paper's key enabler for early restoration termination:
        two cells at ~92% charge retain data past the 64 ms window."""
        retention = bitline.retention_time_ms(2, 0.92)
        assert retention >= bitline.tech.retention_base_ms

    def test_drained_cell_has_zero_retention(self, bitline):
        assert bitline.retention_time_ms(1, 0.55) == 0.0

    @given(f=st.floats(min_value=0.8, max_value=0.975))
    def test_retention_monotonic_in_charge(self, f):
        bitline = BitlineModel()
        assert bitline.retention_time_ms(2, f + 0.02) > bitline.retention_time_ms(2, f)


class TestTechnologyParameters:
    def test_defaults_validate(self):
        TechnologyParameters()

    def test_rejects_negative_capacitance(self):
        with pytest.raises(ConfigError):
            TechnologyParameters(cell_capacitance_ff=-1.0)

    def test_rejects_bad_restore_fraction(self):
        with pytest.raises(ConfigError):
            TechnologyParameters(full_restore_fraction=0.3)

    def test_scaled_preserves_structure(self):
        tech = TechnologyParameters()
        scaled = tech.scaled(1.05)
        assert scaled.cell_capacitance_ff == pytest.approx(
            tech.cell_capacitance_ff * 1.05
        )
        assert scaled.vdd_volts == tech.vdd_volts

    def test_capacitance_ratio(self):
        tech = TechnologyParameters(
            cell_capacitance_ff=20.0, bitline_capacitance_ff=100.0
        )
        assert tech.capacitance_ratio == pytest.approx(0.2)
