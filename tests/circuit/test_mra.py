"""Tests for the MRA timing derivation against the paper's Table 1 / Figs 5-6."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import (
    CrowTimingFactors,
    MraModel,
    TradeoffPoint,
    derive_crow_timing_factors,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def model() -> MraModel:
    return MraModel()


@pytest.fixture(scope="module")
def derived() -> CrowTimingFactors:
    return derive_crow_timing_factors()


class TestFigure5a:
    """tRCD reduction with the number of simultaneously-activated rows."""

    def test_two_row_trcd_reduction_matches_paper(self, model):
        """Paper: simultaneously activating two rows reduces tRCD by 38%."""
        assert model.trcd_factor(2) == pytest.approx(0.62, abs=0.03)

    def test_reduction_has_diminishing_returns(self, model):
        """Each additional row helps less than the previous one."""
        factors = [model.trcd_factor(n) for n in range(1, 10)]
        gains = [factors[i] - factors[i + 1] for i in range(len(factors) - 1)]
        for earlier, later in zip(gains, gains[1:]):
            assert later < earlier

    @given(n=st.integers(min_value=1, max_value=16))
    @settings(max_examples=16)
    def test_trcd_factor_bounded(self, n):
        factor = MraModel().trcd_factor(n)
        assert 0.0 < factor <= 1.0


class TestFigure5b:
    """tRAS / restoration / tWR change with the number of rows."""

    def test_restoration_always_increases_with_rows(self, model):
        for n in range(1, 9):
            assert model.restoration_factor(n + 1) > model.restoration_factor(n)

    def test_twr_always_increases_with_rows(self, model):
        for n in range(1, 9):
            assert model.twr_factor(n + 1) > model.twr_factor(n)

    def test_tras_dips_for_few_rows(self, model):
        """tRCD reduction outweighs restoration growth for small N."""
        assert model.tras_factor(2) < 1.0
        assert model.tras_factor(3) < 1.0

    def test_tras_rises_for_many_rows(self, model):
        """Paper: for five or more rows restoration overhead wins
        (the exact crossover depends on calibration; by nine rows the
        model must show a net tRAS increase, as Figure 5b does)."""
        assert model.tras_factor(9) > 1.0

    def test_two_row_twr_overhead_matches_paper(self, model):
        """Paper Table 1: full-restore MRA writes cost +14% tWR."""
        assert model.twr_factor(2) == pytest.approx(1.14, abs=0.03)


class TestFigure6Frontier:
    def test_frontier_trades_tras_for_trcd(self, model):
        """Lower restore targets shorten tRAS but lengthen next tRCD."""
        points = model.tradeoff_frontier(2, n_points=8)
        for earlier, later in zip(points, points[1:]):
            assert later.tras_factor > earlier.tras_factor
            assert later.next_trcd_factor < earlier.next_trcd_factor

    def test_all_frontier_points_meet_retention(self, model):
        for point in model.tradeoff_frontier(2, n_points=8):
            assert point.retention_ms >= model.tech.retention_base_ms * 0.999

    def test_more_rows_push_frontier_down(self, model):
        """With more duplicate rows, the same tRAS buys a lower tRCD."""
        two = model.tradeoff_frontier(2, n_points=8)
        four = model.tradeoff_frontier(4, n_points=8)
        assert min(p.next_trcd_factor for p in four) < min(
            p.next_trcd_factor for p in two
        )

    def test_paper_operating_point_is_on_frontier(self, model):
        """The paper picks (-21% tRCD, -33% tRAS) for two rows; the model's
        frontier must contain a point at least that good in both axes."""
        points = model.tradeoff_frontier(2, n_points=64)
        assert any(
            p.tras_factor <= 0.67 and p.next_trcd_factor <= 0.80 for p in points
        )

    def test_rejects_too_few_points(self, model):
        with pytest.raises(ConfigError):
            model.tradeoff_frontier(2, n_points=1)

    def test_point_type(self, model):
        point = model.tradeoff_frontier(2, n_points=2)[0]
        assert isinstance(point, TradeoffPoint)


class TestMinRestoreFraction:
    def test_two_rows_allow_partial_restore(self, model):
        f_min = model.min_restore_fraction(2)
        assert f_min < model.tech.full_restore_fraction

    def test_longer_retention_needs_more_charge(self, model):
        base = model.tech.retention_base_ms
        assert model.min_restore_fraction(2, base * 1.2) > model.min_restore_fraction(
            2, base
        )

    def test_impossible_retention_rejected(self, model):
        with pytest.raises(ConfigError):
            model.min_restore_fraction(1, model.tech.retention_base_ms * 100)


class TestDerivedTimingFactors:
    """The analytically-derived factor set lands near the published Table 1."""

    def test_act_t_trcd(self, derived):
        assert derived.act_t_full_trcd == pytest.approx(0.62, abs=0.03)

    def test_act_t_tras_full(self, derived):
        assert derived.act_t_tras_full == pytest.approx(0.93, abs=0.05)

    def test_act_t_tras_early(self, derived):
        assert derived.act_t_tras_early == pytest.approx(0.67, abs=0.05)

    def test_act_t_partial_trcd_between_full_and_baseline(self, derived):
        assert derived.act_t_full_trcd < derived.act_t_partial_trcd < 1.0

    def test_act_c_trcd_unchanged(self, derived):
        assert derived.act_c_trcd == pytest.approx(1.0, abs=0.01)

    def test_act_c_tras_full(self, derived):
        assert derived.act_c_tras_full == pytest.approx(1.18, abs=0.05)

    def test_act_c_tras_early_below_baseline(self, derived):
        assert derived.act_c_tras_early < 1.0

    def test_twr(self, derived):
        assert derived.twr_full == pytest.approx(1.14, abs=0.03)
        assert derived.twr_early == pytest.approx(0.87, abs=0.05)

    def test_validate_accepts_derived(self, derived):
        derived.validate()


class TestFactorValidation:
    def test_paper_factors_validate(self):
        CrowTimingFactors.paper().validate()

    def test_rejects_partial_faster_than_full(self):
        with pytest.raises(ConfigError):
            CrowTimingFactors(
                act_t_full_trcd=0.62, act_t_partial_trcd=0.5
            ).validate()

    def test_rejects_early_slower_than_full(self):
        with pytest.raises(ConfigError):
            CrowTimingFactors(
                act_t_tras_full=0.9, act_t_tras_early=0.95
            ).validate()

    def test_rejects_free_act_c_restore(self):
        with pytest.raises(ConfigError):
            CrowTimingFactors(act_c_tras_full=0.99).validate()


class TestActivateAndCopy:
    def test_copy_does_not_change_trcd(self, model):
        base = model.baseline()
        copy = model.activate_and_copy()
        assert copy.trcd_ns == pytest.approx(base.trcd_ns, rel=1e-9)

    def test_copy_lengthens_tras(self, model):
        assert model.activate_and_copy().tras_ns > model.baseline().tras_ns

    def test_early_terminated_copy_is_cheaper_than_baseline(self, model):
        """Table 1: ACT-c with early restoration termination is tRAS -7%."""
        partial = model.min_restore_fraction(2, model.tech.retention_base_ms * 1.25)
        early = model.activate_and_copy(restore_fraction=partial)
        assert early.tras_ns < model.baseline().tras_ns
