"""Unit tests for sense-amplifier development and restoration dynamics."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit import SenseAmpModel, TechnologyParameters
from repro.errors import ConfigError


@pytest.fixture
def amp() -> SenseAmpModel:
    return SenseAmpModel()


class TestSensing:
    def test_baseline_matches_lpddr4_trcd(self, amp):
        """Single-row sensing completes within ~5% of the 18 ns anchor."""
        trcd = amp.sensing_complete_ns(1)
        assert trcd == pytest.approx(amp.tech.trcd_ns, rel=0.05)

    def test_two_rows_sense_faster(self, amp):
        assert amp.sensing_complete_ns(2) < amp.sensing_complete_ns(1)

    def test_partial_charge_senses_slower(self, amp):
        full = amp.sensing_complete_ns(2, amp.tech.full_restore_fraction)
        partial = amp.sensing_complete_ns(2, 0.9)
        assert partial > full

    def test_zero_delta_v_rejected(self, amp):
        with pytest.raises(ConfigError):
            amp.development_time_ns(0.0)

    @given(n=st.integers(min_value=1, max_value=9))
    def test_sensing_monotonic_in_rows(self, n):
        amp = SenseAmpModel()
        assert amp.sensing_complete_ns(n + 1) < amp.sensing_complete_ns(n)


class TestRestoration:
    def test_baseline_tras_anchor(self, amp):
        """Sensing + full restoration lands within ~5% of tRAS = 42 ns."""
        tras = amp.sensing_complete_ns(1) + amp.restoration_time_ns(
            1, amp.tech.full_restore_fraction
        )
        assert tras == pytest.approx(amp.tech.tras_ns, rel=0.05)

    def test_more_cells_restore_slower(self, amp):
        full = amp.tech.full_restore_fraction
        assert amp.restoration_time_ns(2, full) > amp.restoration_time_ns(1, full)

    def test_partial_target_restores_faster(self, amp):
        assert amp.restoration_time_ns(2, 0.9) < amp.restoration_time_ns(2, 0.975)

    def test_restoring_to_rail_rejected(self, amp):
        with pytest.raises(ConfigError):
            amp.restoration_time_ns(1, 1.0)

    def test_target_below_shared_voltage_needs_no_time(self, amp):
        """Charge sharing leaves the cell near ~0.58 VDD; a target below
        that point requires no restoration work at all."""
        assert amp.restoration_time_ns(1, 0.52, start_fraction=0.97) == 0.0

    def test_lower_start_restores_longer(self, amp):
        target = amp.tech.full_restore_fraction
        from_low = amp.restoration_time_ns(2, target, start_fraction=0.85)
        from_high = amp.restoration_time_ns(2, target, start_fraction=0.95)
        assert from_low > from_high

    def test_tau_grows_linearly_with_cells(self, amp):
        tau1 = amp.restoration_tau_ns(1)
        tau2 = amp.restoration_tau_ns(2)
        tau3 = amp.restoration_tau_ns(3)
        assert tau3 - tau2 == pytest.approx(tau2 - tau1, rel=1e-9)


class TestWrite:
    def test_baseline_twr_anchor_is_exact(self, amp):
        """A conventional full-restore write takes exactly tWR."""
        twr = amp.write_time_ns(1, amp.tech.full_restore_fraction)
        assert twr == pytest.approx(amp.tech.twr_ns, rel=1e-9)

    def test_two_cell_write_is_slower(self, amp):
        full = amp.tech.full_restore_fraction
        assert amp.write_time_ns(2, full) > amp.write_time_ns(1, full)

    def test_early_terminated_write_is_faster_than_baseline(self, amp):
        """The paper's tWR -13% point: partial-restore two-cell writes
        complete faster than conventional single-cell writes."""
        assert amp.write_time_ns(2, 0.91) < amp.tech.twr_ns

    def test_invalid_target_rejected(self, amp):
        with pytest.raises(ConfigError):
            amp.write_time_ns(1, 0.4)
        with pytest.raises(ConfigError):
            amp.write_time_ns(1, 1.0)
