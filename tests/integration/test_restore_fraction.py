"""Section 8.1.1 eviction statistic: evicted-row full-restores are rare.

The paper's argument for the safe-eviction protocol (Section 4.1.4) is
quantitative: even with a single copy row per subarray (CROW-1) and the
restore-before-evict policy, the extra full-restore activations are a
tiny fraction of all activations — 0.6% on average in the paper's
single-core runs. This locks the reproduction to that bound on a
streaming workload where evictions actually occur.
"""

import pytest

from repro import SystemConfig, run_workload

PAPER_BOUND = 0.006  # Section 8.1.1: "only 0.6% of all activations"


class TestRestoreFraction:
    @pytest.fixture(scope="class")
    def result(self):
        config = SystemConfig(
            mechanism="crow-cache",
            copy_rows=1,                 # CROW-1: every miss evicts
            evict_partial="restore",     # the paper's Section 4.1.4 policy
            telemetry=True,
        )
        return run_workload(
            "stream-triad", config,
            instructions=12_000, warmup_instructions=3_000,
        )

    def test_restores_actually_happen(self, result):
        # The bound is only meaningful if the eviction path is exercised.
        crow = result.telemetry["crow"]
        assert crow["restores"]["value"] > 0

    def test_fraction_within_paper_bound(self, result):
        fraction = result.telemetry["crow"]["restore_fraction"]
        assert fraction["value"] is not None
        assert fraction["value"] <= PAPER_BOUND

    def test_ratio_consistent_with_counters(self, result):
        # The Ratio's value must follow from the exported raw counters
        # (restores / (demand activations + restores), summed over every
        # channel — unlike `mechanism_stats`, which sums the per-channel
        # ratio values and is only meaningful per channel).
        crow = result.telemetry["crow"]
        restores = crow["restores"]["value"]
        demand = (crow["hits"]["value"] + crow["misses"]["value"]
                  + crow["uncached"]["value"])
        fraction = crow["restore_fraction"]
        assert fraction["numerator"] == restores
        assert fraction["denominator"] == demand + restores
        assert fraction["value"] == pytest.approx(
            restores / (demand + restores)
        )
