"""Cross-module integration tests: conservation, ordering, and safety
invariants over the full core → LLC → controller → DRAM stack."""

import pytest

from repro import SystemConfig, System, workload
from repro.dram.commands import CommandKind

RUN = dict(instructions=6_000, warmup_instructions=2_000,
           prewarm_accesses=20_000)


def build_and_run(mechanism="baseline", name="h264-dec", cores=1, **cfg):
    config = SystemConfig(cores=cores, mechanism=mechanism, **cfg)
    traces = [workload(name).trace(i) for i in range(cores)]
    system = System(config, traces)
    result = system.run(**RUN)
    return system, result


class TestCommandStreamInvariants:
    def test_reads_match_served_requests(self):
        system, result = build_and_run()
        total_rd = sum(ch.counts[CommandKind.RD] for ch in system.channels)
        served = result.controller_stats["reads_served"]
        assert total_rd == served

    def test_every_activation_eventually_precharged_or_open(self):
        system, _ = build_and_run()
        for channel in system.channels:
            acts = channel.activation_count
            pres = channel.counts[CommandKind.PRE]
            still_open = sum(1 for bank in channel.banks if bank.is_open)
            # Measured-region counts: PREs may close warm-up activations,
            # so allow the off-by-open-banks slack in both directions.
            assert abs(acts - pres) <= len(channel.banks)

    def test_column_accesses_require_matching_activations(self):
        """Row hits mean RD+WR >= ACTs; both are positive under load."""
        system, _ = build_and_run(name="mcf")
        for channel in system.channels:
            col = channel.counts[CommandKind.RD] + channel.counts[CommandKind.WR]
            if channel.activation_count:
                assert col >= 1

    def test_refresh_cadence(self):
        system, result = build_and_run(name="mcf")
        expected = result.cycles // system.timing.trefi
        refreshes = result.controller_stats["refreshes"]
        channels = len(system.channels)
        assert refreshes >= channels * max(0, expected - 2)


class TestDeterminismAcrossMechanisms:
    @pytest.mark.parametrize(
        "mechanism",
        ["baseline", "crow-cache", "crow-ref", "crow-combined",
         "tl-dram", "salp", "chargecache", "ideal-crow-cache"],
    )
    def test_repeatable(self, mechanism):
        _, first = build_and_run(mechanism=mechanism, name="omnetpp")
        _, second = build_and_run(mechanism=mechanism, name="omnetpp")
        assert first.ipc == second.ipc
        assert first.cycles == second.cycles
        assert first.total_energy_nj == second.total_energy_nj


class TestFunctionalSafetyUnderLoad:
    """The full stack with the functional cell array attached: any
    integrity violation raises DataIntegrityError and fails the test."""

    @pytest.mark.parametrize("mechanism", ["crow-cache", "crow-combined"])
    def test_mechanisms_preserve_integrity(self, mechanism):
        _, result = build_and_run(
            mechanism=mechanism, name="h264-dec", functional_cells=True
        )
        assert result.ipc > 0

    def test_restore_policy_preserves_integrity(self):
        _, result = build_and_run(
            mechanism="crow-cache", name="omnetpp",
            functional_cells=True, evict_partial="restore",
        )
        assert result.ipc > 0

    def test_crow_ref_extended_window_with_cells(self):
        _, result = build_and_run(
            mechanism="crow-ref", name="mcf", functional_cells=True,
        )
        assert result.refresh_window_ms == 128.0


class TestMultiChannelBalance:
    def test_traffic_spreads_across_channels(self):
        system, _ = build_and_run(name="mcf")
        reads = [ch.counts[CommandKind.RD] for ch in system.channels]
        assert all(count > 0 for count in reads)
        assert max(reads) < 4 * max(1, min(reads))


class TestPrefetcherIntegration:
    def test_prefetches_fill_and_get_consumed(self):
        system, _ = build_and_run(name="libq", prefetcher=True)
        prefetcher = system.prefetchers[0]
        assert prefetcher.issued > 0
        assert prefetcher.useful > 0
        assert prefetcher.accuracy() > 0.3

    def test_random_pattern_yields_no_useful_prefetches(self):
        system, _ = build_and_run(name="random", prefetcher=True)
        prefetcher = system.prefetchers[0]
        assert prefetcher.accuracy() < 0.5
