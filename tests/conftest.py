"""Shared pytest configuration: hypothesis profiles.

Two registered profiles:

* ``dev`` (default) — a small example budget so the property/fuzz tests
  stay fast during local iteration.
* ``ci`` — derandomized (fixed seed, so every CI run fuzzes the same
  scenario sequence and failures reproduce locally), a larger example
  budget, and no deadline (shared CI runners have noisy clocks). The
  printed ``@reproduce_failure`` blob plus the scenario JSON a failing
  fuzz test prints are enough to replay any counterexample.

Select with ``HYPOTHESIS_PROFILE=ci`` (the CI workflow does). Tests that
pin ``max_examples`` via their own ``@settings`` keep their explicit
budgets under either profile.
"""

import os

from hypothesis import settings

settings.register_profile(
    "ci",
    max_examples=200,
    derandomize=True,
    deadline=None,
    print_blob=True,
)
settings.register_profile(
    "dev",
    max_examples=20,
    deadline=None,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
