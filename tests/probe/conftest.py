"""Shared fixtures for probe tests: small, fast device geometries."""

from dataclasses import replace

import pytest

from repro.dram.geometry import DramGeometry
from repro.sim.config import SystemConfig


def small_config(mechanism: str = "baseline", **overrides) -> SystemConfig:
    """A 4-bank, 1024-row device: full discovery in well under a second
    per mechanism, with every structural boundary still probeable."""
    geometry = DramGeometry(
        banks_per_rank=4, rows_per_bank=1024, rows_per_subarray=256,
    )
    kwargs = dict(
        mechanism=mechanism,
        geometry=geometry,
        copy_rows=8,
        weak_rows_per_subarray=3,
        seed=7,
    )
    kwargs.update(overrides)
    return SystemConfig(**kwargs)


@pytest.fixture
def baseline_config() -> SystemConfig:
    return small_config("baseline")


@pytest.fixture
def crow_config() -> SystemConfig:
    return small_config("crow-cache")


def shaved(config: SystemConfig, **timing_overrides):
    """The device's true timing with some parameters shaved — a lying
    device for mismatch-detection tests."""
    from repro.sim import factory

    base = factory.base_timing(config)
    return replace(base, **timing_overrides)
