"""ProbeSession semantics: sandboxing, rejection taxonomy, budget."""

import pytest

from repro.errors import ProbeError
from repro.probe.session import ProbeSession

from tests.probe.conftest import small_config


@pytest.fixture
def session(baseline_config) -> ProbeSession:
    return ProbeSession(baseline_config)


BOOT = 64  # past any mechanism boot traffic


class TestRejectionTaxonomy:
    def test_out_of_range_bank_is_address_reject(self, session):
        outcome = session.attempt(session.cmd_act(64, 0), BOOT)
        assert not outcome.accepted
        assert outcome.reason == "address"

    def test_out_of_range_row_is_address_reject(self, session):
        outcome = session.attempt(session.cmd_act(0, 1 << 20), BOOT)
        assert not outcome.accepted
        assert outcome.reason == "address"

    def test_premature_read_is_timing_reject(self, session):
        at, outcome = session.step_earliest(session.cmd_act(0, 0))
        assert outcome.accepted
        premature = session.attempt(session.cmd_rd(0), at + 1)
        assert not premature.accepted
        assert premature.reason == "timing"

    def test_read_of_closed_bank_is_state_reject(self, session):
        outcome = session.attempt(session.cmd_rd(0), BOOT)
        assert not outcome.accepted
        assert outcome.reason == "state"

    def test_unmapped_copy_row_act_is_conformance_reject(self):
        # CROW-cache boots with every copy row out of service, so a
        # plain ACT decoding into the copy region is a checker verdict —
        # observable only through the shadow checker, as a "crow"
        # category conformance rejection.
        session = ProbeSession(small_config("crow-cache"))
        outcome = session.attempt(session.cmd_act_copy(0, 0, 0), BOOT)
        assert not outcome.accepted
        assert outcome.reason == "conformance"
        assert outcome.category == "crow"

    def test_without_shadow_copy_region_act_is_accepted(self):
        session = ProbeSession(small_config("crow-cache"), shadow=False)
        outcome = session.attempt(session.cmd_act_copy(0, 0, 0), BOOT)
        assert outcome.accepted


class TestSandboxing:
    def test_attempt_rolls_back_device_state(self, session):
        # An accepted attempt must leave no trace: the same ACT at the
        # same cycle is accepted again (a leaked open row would make the
        # second one a state rejection).
        first = session.attempt(session.cmd_act(0, 0), BOOT)
        second = session.attempt(session.cmd_act(0, 0), BOOT)
        assert first.accepted and second.accepted

    def test_step_commits_device_state(self, session):
        at, outcome = session.step_earliest(session.cmd_act(0, 0))
        assert outcome.accepted
        again = session.attempt(session.cmd_act(0, 0), at + 1000)
        assert not again.accepted
        assert again.reason == "state"

    def test_sandbox_restores_committed_state(self, session):
        session.step_earliest(session.cmd_act(0, 0))
        with session.sandbox():
            at, pre = session.step_earliest(session.cmd_pre(0))
            assert pre.accepted
            reopened = session.step_earliest(session.cmd_act(0, 1))[1]
            assert reopened.accepted
        # Outside the sandbox the bank is still open on row 0.
        closed = session.attempt(session.cmd_act(0, 1), session.now + 1000)
        assert not closed.accepted and closed.reason == "state"

    def test_mark_restore_round_trip(self, session):
        token = session.mark()
        session.step_earliest(session.cmd_act(1, 5))
        session.restore(token)
        outcome = session.attempt(session.cmd_act(1, 5), session.now + 100)
        assert outcome.accepted


class TestObservables:
    def test_read_reports_data_beat(self, session):
        at, _ = session.step_earliest(session.cmd_act(0, 0))
        rd_at, outcome = session.step_earliest(session.cmd_rd(0))
        assert outcome.accepted
        assert outcome.data_at is not None and outcome.data_at > rd_at

    def test_budget_counts_attempts_and_commits(self, session):
        before = session.budget()
        session.attempt(session.cmd_act(0, 0), BOOT)
        session.step_earliest(session.cmd_act(0, 0))
        after = session.budget()
        # step_earliest brackets via sandboxed attempts, so the attempt
        # count grows by more than the one explicit probe; commits grow
        # by exactly the one committed ACT.
        assert after["probe.attempts"] >= before["probe.attempts"] + 2
        assert after["probe.commits"] == before["probe.commits"] + 1

    def test_retention_errors_deterministic(self, session):
        first = {
            row for row in range(256)
            if session.retention_errors(0, row, 128.0)
        }
        second = {
            row for row in range(256)
            if session.retention_errors(0, row, 128.0)
        }
        assert first == second
        # The 256-row scan covers subarray 0, which holds exactly the
        # configured number of weak rows at the target interval.
        assert len(first) == session.config.weak_rows_per_subarray

    def test_target_interval_matches_config(self, baseline_config, session):
        assert (
            session.target_retention_interval_ms
            == baseline_config.target_refresh_window_ms
        )


class TestValidation:
    def test_retention_probe_range_checked(self, session):
        with pytest.raises(ProbeError):
            session.retention_errors(0, 1 << 20, 128.0)
        with pytest.raises(ProbeError):
            session.retention_errors(99, 0, 128.0)
