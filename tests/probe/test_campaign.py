"""ProbeSpec through the execution stack: digests, cache, wire, store."""

import pickle

import pytest

from repro.errors import ClusterError, ConfigError
from repro.exec.parallel import ParallelCampaign
from repro.probe.campaign import ProbeResult, ProbeSpec, execute_probe

from tests.probe.conftest import small_config


def spec_for(mechanism: str = "baseline", **kwargs) -> ProbeSpec:
    return ProbeSpec.device(small_config(mechanism), **kwargs)


class TestIdentity:
    def test_digest_is_deterministic(self):
        assert spec_for().digest() == spec_for().digest()

    def test_probe_fields_fold_into_digest(self):
        base = spec_for()
        assert spec_for(channel=1).digest() != base.digest()
        assert spec_for(shadow=False).digest() != base.digest()
        assert spec_for(probe_banks=(0,)).digest() != base.digest()
        assert spec_for(verify=False).digest() != base.digest()
        assert (
            spec_for(retention_interval_ms=256.0).digest() != base.digest()
        )

    def test_config_folds_into_digest(self):
        assert spec_for("crow-cache").digest() != spec_for().digest()

    def test_cache_filename_names_the_family(self):
        spec = spec_for("crow-cache", channel=1)
        name = spec.cache_filename()
        assert name.startswith("probe-crow-cache-ch1-")
        assert spec.digest() in name

    def test_invalid_kind_rejected(self):
        import dataclasses

        with pytest.raises(ConfigError):
            dataclasses.replace(spec_for(), kind="oracle")

    def test_negative_channel_rejected(self):
        with pytest.raises(ConfigError):
            spec_for(channel=-1)

    def test_wire_round_trip_preserves_class_and_digest(self):
        spec = spec_for("crow-cache", probe_banks=(0, 1))
        rebuilt = ProbeSpec.from_wire(spec.to_wire())
        assert isinstance(rebuilt, ProbeSpec)
        assert rebuilt.digest() == spec.digest()
        assert rebuilt.probe_banks == (0, 1)


class TestExecution:
    def test_run_produces_verified_result(self):
        result = spec_for().run()
        assert isinstance(result, ProbeResult)
        assert result.ok
        assert result.report is not None and result.report.ok
        assert result.telemetry_digest() is not None

    def test_verify_false_skips_the_report(self):
        result = spec_for(verify=False).run()
        assert result.report is None
        assert result.ok  # vacuously

    def test_result_pickles(self):
        result = spec_for().run()
        clone = pickle.loads(pickle.dumps(result))
        assert clone.telemetry_digest() == result.telemetry_digest()
        assert clone.report.ok

    def test_campaign_caches_probe_results(self, tmp_path):
        spec = spec_for(probe_banks=(0,))
        with ParallelCampaign(tmp_path, jobs=1) as campaign:
            first = campaign.run([spec], _fn=execute_probe)[0]
        assert first.ok and not first.cached
        assert isinstance(first.result, ProbeResult)
        with ParallelCampaign(tmp_path, jobs=1) as campaign:
            second = campaign.run([spec], _fn=execute_probe)[0]
        assert second.cached
        assert (
            second.result.telemetry_digest()
            == first.result.telemetry_digest()
        )


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        from repro.cluster.store import ResultStore

        spec = spec_for(probe_banks=(0,))
        result = spec.run()
        store = ResultStore(tmp_path)
        assert store.get_result(spec) is None
        stored = store.put_result(spec, result)
        assert stored.telemetry_digest() == result.telemetry_digest()
        loaded = store.get_result(spec)
        assert isinstance(loaded, ProbeResult)
        assert loaded.telemetry_digest() == result.telemetry_digest()

    def test_store_rejects_foreign_result_type(self, tmp_path):
        from repro.cluster.store import ResultStore

        spec = spec_for()
        store = ResultStore(tmp_path)
        with pytest.raises(ClusterError):
            store.put_result(spec, object())
