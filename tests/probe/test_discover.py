"""End-to-end structure inference: discover + verify on small devices.

Every test here infers from observed behaviour alone (a
:class:`ProbeSession` never leaks its config to the routines) and then
checks the inference against the generating config with
``verify_against`` — the paper-facing acceptance criterion.
"""

import pytest

from repro.probe.infer import ground_truth
from repro.probe.routines import discover
from repro.probe.session import ProbeSession

from tests.probe.conftest import shaved, small_config

MECHANISMS = ["baseline", "crow-cache", "crow-ref", "salp"]


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_discover_matches_generating_config(mechanism):
    config = small_config(mechanism)
    session = ProbeSession(config)
    profile = discover(session)
    report = profile.verify_against(config)
    assert report.ok, report.summary()
    assert not report.mismatched


def test_geometry_inferred_exactly():
    config = small_config("crow-cache")
    profile = discover(ProbeSession(config))
    geometry = config.resolved_geometry()
    assert profile.value("banks") == geometry.banks_per_channel
    assert profile.value("rows_per_bank") == geometry.rows_per_bank
    assert profile.value("rows_per_subarray") == geometry.rows_per_subarray
    assert (
        profile.value("copy_rows_per_subarray")
        == geometry.copy_rows_per_subarray
    )
    assert (
        profile.value("subarrays_per_bank") == geometry.subarrays_per_bank
    )


def test_core_timings_match_ground_truth():
    config = small_config("baseline")
    profile = discover(ProbeSession(config))
    truth = ground_truth(config)
    for name in ("trcd", "tras", "trp", "trc", "trrd", "tccd",
                 "trtp", "read_latency", "write_latency", "trfc"):
        assert profile.value(name) == truth["parameters"][name], name


def test_weak_rows_recovered_from_retention_behaviour():
    config = small_config("crow-ref")
    profile = discover(ProbeSession(config))
    truth = ground_truth(config)
    assert profile.weak_rows == truth["weak_rows"]


def test_duplicate_map_recovered_on_crow_ref():
    # CROW-ref boots with every weak row remapped to a copy row; the
    # probe recovers the full (bank, subarray, slot) -> row map from
    # checker-visible in-service scans plus the retention scan.
    config = small_config("crow-ref")
    profile = discover(ProbeSession(config))
    truth = ground_truth(config)
    assert profile.duplicate_map_observed
    assert profile.duplicate_map == truth["duplicate_map"]


def test_shaved_trcd_detected_as_mismatch():
    # A device whose true tRCD is 4 cycles short of what its config
    # claims: inference measures behaviour, so verification must flag
    # exactly that one parameter (tRCD feeds no other probed value).
    config = small_config("baseline")
    base = shaved(config)
    lying = ProbeSession(
        config, timing=shaved(config, trcd=base.trcd - 4), shadow=False
    )
    profile = discover(lying)
    report = profile.verify_against(config)
    assert not report.ok
    mismatched = [
        (diff.name, diff.inferred, diff.actual)
        for diff in report.mismatched
    ]
    assert mismatched == [("trcd", base.trcd - 4, base.trcd)]


def test_probe_sequences_pass_strict_conformance():
    # The shadow checker runs in strict mode: any committed probe
    # sequence that violated the protocol would raise out of discover.
    # Reaching a verified profile with the shadow attached IS the
    # conformance assertion; the budget proves the checker actually saw
    # committed traffic.
    config = small_config("crow-cache")
    session = ProbeSession(config, shadow=True)
    profile = discover(session)
    assert session.checker is not None
    assert profile.verify_against(config).ok
    assert session.budget()["probe.commits"] > 0


def test_discover_without_shadow_degrades_gracefully():
    # No checker: CROW mapping state is invisible, so the duplicate map
    # is reported unobservable (a skipped diff), never guessed at —
    # and everything that is observable still verifies.
    config = small_config("crow-cache")
    profile = discover(ProbeSession(config, shadow=False))
    assert not profile.duplicate_map_observed
    report = profile.verify_against(config)
    assert report.ok, report.summary()
    skipped = {d.name for d in report.diffs if d.status == "skipped"}
    assert "duplicate_map" in skipped


def test_probe_banks_scopes_the_retention_scan():
    config = small_config("crow-ref")
    profile = discover(ProbeSession(config), probe_banks=[1])
    truth = ground_truth(config)
    assert set(profile.weak_rows) == {1}
    assert profile.weak_rows[1] == truth["weak_rows"][1]
