"""Tests for TaskSpec: identity, digests, execution equivalence."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import SystemConfig, run_workload
from repro.errors import ConfigError
from repro.exec import TaskSpec, execute_task

RUN = dict(instructions=3_000, warmup_instructions=1_000)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            TaskSpec(kind="suite", names=("libq",))

    def test_empty_names_rejected(self):
        with pytest.raises(ConfigError):
            TaskSpec(kind="wl", names=())

    def test_wl_takes_exactly_one_name(self):
        with pytest.raises(ConfigError):
            TaskSpec(kind="wl", names=("libq", "mcf"))

    def test_names_normalized_to_tuple(self):
        spec = TaskSpec.mix(["libq", "mcf"])
        assert spec.names == ("libq", "mcf")


class TestDigest:
    def test_equal_specs_share_a_digest(self):
        a = TaskSpec.workload("libq", SystemConfig(), seed=3, **RUN)
        b = TaskSpec.workload("libq", SystemConfig(), seed=3, **RUN)
        assert a.digest() == b.digest()
        assert a.cache_filename() == b.cache_filename()

    def test_every_field_feeds_the_digest(self):
        base = TaskSpec.workload("libq", SystemConfig(), seed=0, **RUN)
        variants = [
            TaskSpec.workload("mcf", SystemConfig(), seed=0, **RUN),
            TaskSpec.workload(
                "libq", SystemConfig(mechanism="crow-cache"), seed=0, **RUN
            ),
            TaskSpec.workload("libq", SystemConfig(), seed=1, **RUN),
            TaskSpec.workload(
                "libq", SystemConfig(), seed=0,
                instructions=4_000, warmup_instructions=1_000,
            ),
            TaskSpec.workload(
                "libq", SystemConfig(), seed=0,
                instructions=3_000, warmup_instructions=2_000,
            ),
            TaskSpec.mix(["libq"], SystemConfig(), seed=0, **RUN),
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == len(variants) + 1

    def test_digest_stable_across_processes(self):
        """The digest is the cache key: it must agree between the parent
        and any worker process (no salted hash(), no object identity)."""
        spec = TaskSpec.workload(
            "libq", SystemConfig(mechanism="crow-cache", copy_rows=4),
            instructions=5_000, warmup_instructions=1_000, seed=3,
        )
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_dir)] + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        code = (
            "from repro import SystemConfig\n"
            "from repro.exec import TaskSpec\n"
            "spec = TaskSpec.workload('libq', "
            "SystemConfig(mechanism='crow-cache', copy_rows=4), "
            "instructions=5_000, warmup_instructions=1_000, seed=3)\n"
            "print(spec.digest())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        ).stdout.strip()
        assert out == spec.digest()


class TestExecution:
    def test_workload_task_matches_direct_run(self):
        spec = TaskSpec.workload("h264-dec", SystemConfig(), **RUN)
        direct = run_workload("h264-dec", SystemConfig(), **RUN)
        via_task = execute_task(spec)
        assert via_task.ipc == direct.ipc
        assert via_task.cycles == direct.cycles
        assert via_task.total_energy_nj == direct.total_energy_nj

    def test_mix_task_runs_one_core_per_name(self):
        spec = TaskSpec.mix(
            ["libq", "bzip2"], SystemConfig(cores=2),
            instructions=2_000, warmup_instructions=500,
        )
        result = spec.run()
        assert result.cores == 2
        assert len(result.core_ipcs) == 2

    def test_label_is_informative(self):
        spec = TaskSpec.mix(
            ["libq", "mcf"], SystemConfig(mechanism="crow-cache"), seed=2
        )
        assert "libq" in spec.label
        assert "crow-cache" in spec.label
        assert "#2" in spec.label
