"""Tests for ParallelCampaign: cache parity with Campaign, journaling."""

import os
import pickle
from pathlib import Path

import pytest

from repro import SystemConfig
from repro.errors import ConfigError
from repro.exec import (
    ParallelCampaign,
    RunJournal,
    TaskSpec,
    read_journal,
)
from repro.sim import Campaign

RUN = dict(instructions=2_000, warmup_instructions=500)
MIX_RUN = dict(instructions=1_500, warmup_instructions=400)


def _specs():
    return [
        TaskSpec.workload("libq", SystemConfig(), **RUN),
        TaskSpec.workload(
            "h264-dec", SystemConfig(mechanism="crow-cache"), **RUN
        ),
        TaskSpec.mix(["libq", "bzip2"], SystemConfig(cores=2), **MIX_RUN),
    ]


def _fail_until_marker(spec):
    """Injected fault: the marked task fails its first attempt."""
    marker = Path(os.environ["REPRO_TEST_MARKER"])
    if spec.kind == "wl" and spec.names[0] == "libq" and not marker.exists():
        marker.touch()
        raise RuntimeError("injected worker fault")
    return spec.run()


def _always_fail(spec):
    raise RuntimeError("unrecoverable")


class TestSerialParallelParity:
    def test_parallel_matches_serial_campaign_exactly(self, tmp_path):
        """jobs=4 must produce the same cache keys and identical results
        as the serial Campaign (the acceptance criterion; dataclass
        equality is field-complete, covering every metric)."""
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        campaign = Campaign(serial_dir)
        serial_results = [
            campaign.run_workload("libq", SystemConfig(), **RUN),
            campaign.run_workload(
                "h264-dec", SystemConfig(mechanism="crow-cache"), **RUN
            ),
            campaign.run_mix(
                ["libq", "bzip2"], SystemConfig(cores=2), **MIX_RUN
            ),
        ]
        parallel = ParallelCampaign(parallel_dir, jobs=4, retries=0)
        parallel_results = parallel.results(_specs())

        # Same cache keys on disk...
        assert sorted(p.name for p in serial_dir.glob("*.pkl")) == \
            sorted(p.name for p in parallel_dir.glob("*.pkl"))
        # ...same metrics in memory...
        for s, p in zip(serial_results, parallel_results):
            assert s == p
        # ...and either cache deserializes to the other's values.
        for name in (p.name for p in serial_dir.glob("*.pkl")):
            a = pickle.loads((serial_dir / name).read_bytes())
            b = pickle.loads((parallel_dir / name).read_bytes())
            assert a == b

    def test_parallel_reads_serial_cache(self, tmp_path):
        campaign = Campaign(tmp_path)
        campaign.run_workload("libq", SystemConfig(), **RUN)
        parallel = ParallelCampaign(tmp_path, jobs=2)
        outcomes = parallel.run([_specs()[0]])
        assert outcomes[0].cached
        assert parallel.hits == 1 and parallel.misses == 0

    def test_second_run_is_all_cache_hits(self, tmp_path):
        specs = _specs()
        first = ParallelCampaign(tmp_path, jobs=2)
        first.run(specs)
        assert first.misses == len(specs)
        second = ParallelCampaign(tmp_path, jobs=2)
        outcomes = second.run(specs)
        assert all(o.cached for o in outcomes)
        assert second.hits == len(specs) and second.misses == 0


class TestFaultTolerance:
    def test_injected_fault_is_retried_and_journaled(
        self, tmp_path, monkeypatch
    ):
        """A worker that dies mid-campaign is retried and the campaign
        still completes every other task."""
        monkeypatch.setenv(
            "REPRO_TEST_MARKER", str(tmp_path / "fault-injected")
        )
        journal = tmp_path / "journal.jsonl"
        campaign = ParallelCampaign(
            tmp_path / "cache", jobs=2, retries=1, backoff_s=0.01,
            journal=journal,
        )
        outcomes = campaign.run(_specs(), _fn=_fail_until_marker)
        campaign.close()
        assert all(o.ok for o in outcomes)
        faulted = next(
            o for o in outcomes
            if o.spec.kind == "wl" and o.spec.names[0] == "libq"
        )
        assert faulted.attempts == 2

        events = read_journal(journal)
        names = [e["event"] for e in events]
        assert names[0] == "campaign_start" and names[-1] == "campaign_end"
        assert "task_retry" in names
        retry = next(e for e in events if e["event"] == "task_retry")
        assert "injected worker fault" in retry["error"]
        summary = events[-1]
        assert summary["done"] == 3 and summary["failed"] == 0

    def test_exhausted_task_does_not_abort_campaign(self, tmp_path):
        campaign = ParallelCampaign(
            tmp_path, jobs=2, retries=1, backoff_s=0.01
        )
        specs = _specs()
        outcomes = campaign.run(
            specs,
            _fn=lambda s: (_always_fail(s)
                           if s.kind == "wl" and s.names[0] == "libq"
                           else s.run()),
        )
        assert [o.ok for o in outcomes] == [False, True, True]
        # Failed tasks never poison the cache.
        rerun = ParallelCampaign(tmp_path, jobs=1)
        rerun_outcomes = rerun.run([specs[0]])
        assert not rerun_outcomes[0].cached
        assert rerun_outcomes[0].ok

    def test_results_raises_listing_failures(self, tmp_path):
        campaign = ParallelCampaign(tmp_path, jobs=1, retries=0)
        with pytest.raises(ConfigError, match="failed after retries"):
            campaign.results([_specs()[0]], _fn=_always_fail)


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("task_start", task="wl:libq", attempt=1)
            journal.record("task_done", task="wl:libq", duration_s=1.25)
        events = read_journal(path)
        assert [e["event"] for e in events] == ["task_start", "task_done"]
        assert events[1]["duration_s"] == 1.25
        assert all("t" in e for e in events)

    def test_append_only_across_sessions(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("campaign_start", total=1)
        with RunJournal(path) as journal:
            journal.record("campaign_start", total=2)
        events = read_journal(path)
        assert [e["total"] for e in events] == [1, 2]

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record("task_done", task="a")
        with path.open("a") as handle:
            handle.write('{"event": "task_do')  # killed mid-write
        events = read_journal(path)
        assert len(events) == 1

    def test_record_is_durable_before_close(self, tmp_path, monkeypatch):
        # Each record must be fsynced the moment record() returns — a
        # reader (or a post-crash recovery) sees it without close().
        import os

        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.record("task_start", task="a")
        assert synced, "record() did not fsync"
        assert read_journal(path) == [
            {"event": "task_start", "t": read_journal(path)[0]["t"],
             "task": "a"}
        ]
        journal.close()

    def test_fsync_can_be_disabled(self, tmp_path, monkeypatch):
        import os

        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        with RunJournal(tmp_path / "j.jsonl", fsync=False) as journal:
            journal.record("task_start", task="a")
        assert not synced

    def test_fsync_every_batches_syncs(self, tmp_path, monkeypatch):
        import os

        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        with RunJournal(tmp_path / "j.jsonl", fsync_every=3) as journal:
            for i in range(7):
                journal.record("tick", i=i)
                # One sync per full batch of three records.
                assert len(synced) == (i + 1) // 3
        assert len(read_journal(tmp_path / "j.jsonl")) == 7

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl.gz"
        with RunJournal(path) as journal:
            journal.record("task_start", task="a")
            journal.record("task_done", task="a", duration_s=0.5)
        import gzip

        # Actually compressed on disk, not plain text with a .gz name.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        raw = gzip.decompress(path.read_bytes()).decode()
        assert raw.count("\n") == 2
        events = read_journal(path)
        assert [e["event"] for e in events] == ["task_start", "task_done"]

    def test_gzip_append_across_sessions(self, tmp_path):
        # A killed-and-restarted writer appends a second gzip member;
        # read_journal must see one continuous stream.
        path = tmp_path / "j.jsonl.gz"
        with RunJournal(path) as journal:
            journal.record("campaign_start", total=1)
        with RunJournal(path) as journal:
            journal.record("campaign_start", total=2)
        assert [e["total"] for e in read_journal(path)] == [1, 2]

    def test_gzip_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl.gz"
        with RunJournal(path) as journal:
            journal.record("task_done", task="a")
        intact = path.read_bytes()
        import gzip

        # A writer killed mid-flush leaves a truncated final member.
        torn = gzip.compress(b'{"event": "task_do')
        path.write_bytes(intact + torn[: len(torn) // 2])
        events = read_journal(path)
        assert [e["event"] for e in events] == ["task_done"]


class TestTaskTelemetryEvents:
    def test_run_and_cache_hit_emit_matching_digests(self, tmp_path):
        from repro.sim.config import SystemConfig

        spec = TaskSpec.workload(
            "libq",
            SystemConfig(mechanism="crow-cache", telemetry=True),
            instructions=2_000, warmup_instructions=500,
        )
        journal_path = tmp_path / "j.jsonl"

        with ParallelCampaign(
            tmp_path / "cache", jobs=1, journal=journal_path
        ) as campaign:
            campaign.run([spec])
        with ParallelCampaign(
            tmp_path / "cache", jobs=1, journal=journal_path
        ) as campaign:
            campaign.run([spec])

        events = [e for e in read_journal(journal_path)
                  if e["event"] == "task_telemetry"]
        assert len(events) == 2
        ran, hit = events
        assert ran["cached"] is False and hit["cached"] is True
        assert ran["telemetry_digest"] == hit["telemetry_digest"]
        assert ran["digest"] == spec.digest()

    def test_no_event_without_telemetry(self, tmp_path):
        spec = TaskSpec.workload(
            "libq", instructions=2_000, warmup_instructions=500
        )
        journal_path = tmp_path / "j.jsonl"
        with ParallelCampaign(
            tmp_path / "cache", jobs=1, journal=journal_path
        ) as campaign:
            campaign.run([spec])
        events = [e["event"] for e in read_journal(journal_path)]
        assert "task_telemetry" not in events
