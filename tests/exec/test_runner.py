"""Tests for the parallel runner: retries, timeouts, crash isolation."""

import os
import pickle
import time
from pathlib import Path

import pytest

from repro import SystemConfig
from repro.exec import ProcessPoolRunner, TaskSpec, execute_task

FAST = dict(retries=1, backoff_s=0.01)


def _spec(seed=0, payload="task"):
    """A TaskSpec used purely as a work token for toy functions (the
    ``names`` slot smuggles a filesystem path to the flaky helpers)."""
    return TaskSpec(
        kind="wl", names=(payload,), config=SystemConfig(),
        instructions=1_000, warmup_instructions=200, seed=seed,
    )


# Toy task functions (module-level: they cross the fork boundary).

def _double(spec):
    return spec.seed * 2


def _boom(spec):
    raise RuntimeError(f"boom-{spec.seed}")


def _fail_until_marker(spec):
    marker = Path(spec.names[0])
    if marker.exists():
        return "recovered"
    marker.touch()
    raise RuntimeError("first attempt always fails")


def _hard_crash(spec):
    os._exit(41)


def _sleep_forever(spec):
    time.sleep(60)


def _mixed(spec):
    if spec.seed == 0:
        os._exit(41)
    if spec.seed == 1:
        time.sleep(60)
    return spec.seed * 2


class TestSerial:
    def test_results_in_task_order(self):
        runner = ProcessPoolRunner(jobs=1, **FAST)
        outcomes = runner.run([_spec(seed=i) for i in range(4)], fn=_double)
        assert [o.result for o in outcomes] == [0, 2, 4, 6]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_retry_then_succeed(self, tmp_path):
        runner = ProcessPoolRunner(jobs=1, **FAST)
        outcomes = runner.run(
            [_spec(payload=str(tmp_path / "marker"))], fn=_fail_until_marker
        )
        assert outcomes[0].ok
        assert outcomes[0].result == "recovered"
        assert outcomes[0].attempts == 2

    def test_retries_exhausted(self):
        events = []
        runner = ProcessPoolRunner(
            jobs=1, retries=2, backoff_s=0.01,
            observers=[lambda e, f: events.append(e)],
        )
        outcomes = runner.run([_spec(seed=9)], fn=_boom)
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 3
        assert "RuntimeError: boom-9" in outcomes[0].error
        assert events.count("task_retry") == 2
        assert events.count("task_failed") == 1

    def test_failure_does_not_sink_following_tasks(self):
        runner = ProcessPoolRunner(jobs=1, retries=0, backoff_s=0.01)
        outcomes = runner.run(
            [_spec(seed=0), _spec(seed=1), _spec(seed=2)],
            fn=lambda s: _boom(s) if s.seed == 1 else _double(s),
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[2].result == 4


class TestParallel:
    def test_results_in_task_order(self):
        runner = ProcessPoolRunner(jobs=3, **FAST)
        outcomes = runner.run([_spec(seed=i) for i in range(6)], fn=_double)
        assert [o.result for o in outcomes] == [0, 2, 4, 6, 8, 10]

    def test_retry_then_succeed_across_processes(self, tmp_path):
        runner = ProcessPoolRunner(jobs=2, **FAST)
        outcomes = runner.run(
            [_spec(payload=str(tmp_path / "marker"))], fn=_fail_until_marker
        )
        assert outcomes[0].ok
        assert outcomes[0].attempts == 2

    def test_worker_crash_is_isolated_and_reported(self):
        events = []
        runner = ProcessPoolRunner(
            jobs=2, retries=1, backoff_s=0.01,
            observers=[lambda e, f: events.append((e, f))],
        )
        outcomes = runner.run(
            [_spec(seed=0), _spec(seed=2), _spec(seed=3)], fn=_mixed
        )
        crash = outcomes[0]
        assert not crash.ok and crash.crashed
        assert "exit code 41" in crash.error
        assert crash.attempts == 2  # the crash was retried once
        # ...and the healthy tasks completed regardless.
        assert outcomes[1].result == 4
        assert outcomes[2].result == 6
        retried = [f for e, f in events if e == "task_retry"]
        assert retried and retried[0]["crashed"]

    def test_timeout_kills_the_worker(self):
        runner = ProcessPoolRunner(
            jobs=2, retries=0, backoff_s=0.01, timeout_s=0.5
        )
        started = time.monotonic()
        outcomes = runner.run(
            [_spec(seed=1), _spec(seed=5)], fn=_mixed
        )
        wall = time.monotonic() - started
        assert not outcomes[0].ok and outcomes[0].timed_out
        assert "timed out" in outcomes[0].error
        assert outcomes[1].result == 10
        assert wall < 30  # the sleeping worker did not run to completion

    def test_serial_and_parallel_results_are_identical(self):
        """Tasks are pure functions of their spec: worker-process
        execution must reproduce the in-process result exactly (every
        SimResult field, including nested energy/stat structures —
        dataclass equality is field-complete)."""
        specs = [
            TaskSpec.workload(
                "libq", SystemConfig(), instructions=2_000,
                warmup_instructions=500,
            ),
            TaskSpec.workload(
                "h264-dec", SystemConfig(mechanism="crow-cache"),
                instructions=2_000, warmup_instructions=500,
            ),
        ]
        serial = ProcessPoolRunner(jobs=1, **FAST).run(specs, fn=execute_task)
        parallel = ProcessPoolRunner(jobs=2, **FAST).run(
            specs, fn=execute_task
        )
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            assert s.result == p.result
            assert vars(s.result).keys() == vars(p.result).keys()


class TestObservers:
    def test_event_stream_schema(self):
        events = []
        runner = ProcessPoolRunner(
            jobs=2, **FAST, observers=[lambda e, f: events.append((e, f))]
        )
        runner.run([_spec(seed=4)], fn=_double)
        names = [e for e, _ in events]
        assert names == ["task_start", "task_done"]
        start, done = (f for _, f in events)
        assert start["task"] == done["task"]
        assert start["digest"] == done["digest"]
        assert done["duration_s"] >= 0


class TestRetryBackoff:
    """Deterministic decorrelated jitter on the retry schedule."""

    def test_deterministic_for_same_task_and_attempt(self):
        from repro.exec import retry_backoff

        spec = _spec(seed=3)
        draws = {retry_backoff(spec, 2, 1.0) for _ in range(10)}
        assert len(draws) == 1

    def test_jitter_stays_within_half_open_band(self):
        from repro.exec import retry_backoff

        for attempt in (1, 2, 3, 4):
            base = 0.25 * (2 ** (attempt - 1))
            delay = retry_backoff(_spec(seed=7), attempt, 0.25)
            assert base * 0.5 <= delay < base

    def test_schedule_grows_exponentially(self):
        from repro.exec import retry_backoff

        spec = _spec(seed=1)
        delays = [retry_backoff(spec, a, 1.0) for a in (1, 2, 3, 4)]
        # Jitter never cancels the doubling: band [0.5b, b) for base b.
        assert all(late > early for early, late in zip(delays, delays[1:]))

    def test_decorrelated_across_tasks_and_attempts(self):
        from repro.exec import retry_backoff

        specs = [_spec(seed=s) for s in range(6)]
        same_attempt = {retry_backoff(s, 1, 1.0) for s in specs}
        assert len(same_attempt) == len(specs)  # no stampede in lockstep
        one_spec = {
            retry_backoff(specs[0], a, 1.0) / (2 ** (a - 1))
            for a in (1, 2, 3, 4)
        }
        assert len(one_spec) == 4  # fresh draw per attempt, not scaled
