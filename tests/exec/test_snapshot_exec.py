"""Campaign-level snapshot behaviour: crash-resume and warm forking.

Covers the exec-engine side of the snapshot subsystem: a retried task
resumes from the checkpoint its killed predecessor left behind (and the
journal says so), corrupt checkpoints degrade to a full re-run, and
``run_forked`` pre-warms once per compatibility group without changing
any result byte.
"""

import json
import os
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.exec import ParallelCampaign, TaskSpec
from repro.sim.config import SystemConfig
from repro.sim.sweep import run_workload

DATA = Path(__file__).resolve().parent.parent / "data"
EXPECTED = json.loads((DATA / "expected_digests.json").read_text())

RUN = dict(instructions=2_000, warmup_instructions=500, seed=0)


def spec_for(mechanism, **extra):
    return TaskSpec.workload(
        "libq",
        SystemConfig(cores=1, mechanism=mechanism, seed=1, telemetry=True),
        **RUN,
        **extra,
    )


def read_journal(path):
    return [json.loads(line) for line in Path(path).read_text().splitlines()]


def events(journal, name):
    return [e for e in journal if e.get("event") == name]


def _crash_after_checkpoint(spec):
    """Worker body simulating a mid-run kill: attempt 1 leaves a valid
    checkpoint at cycle 250 and dies without reporting; the retry runs
    the spec normally and must resume from that checkpoint."""
    checkpoint = spec.checkpoint_path()
    if not checkpoint.is_file():
        run_workload(
            spec.names[0], spec.config,
            instructions=spec.instructions,
            warmup_instructions=spec.warmup_instructions,
            seed=spec.seed,
            snapshot_at_cycle=250, snapshot_path=checkpoint,
        )
        os._exit(13)
    return spec.run()


class TestSpecIdentity:
    def test_snapshot_fields_do_not_change_digest(self, tmp_path):
        """Warm/checkpoint plumbing changes *how* a task executes, never
        *what* it is — so it must not shift the cache key."""
        plain = spec_for("baseline")
        plumbed = spec_for(
            "baseline",
            warm_image=tmp_path / "w.warm",
            checkpoint_dir=tmp_path,
            checkpoint_every=123,
        )
        assert plain.digest() == plumbed.digest()
        assert plain.cache_filename() == plumbed.cache_filename()

    def test_checkpoint_path_is_digest_named(self, tmp_path):
        spec = spec_for("baseline", checkpoint_dir=tmp_path)
        assert spec.checkpoint_path() == tmp_path / f"{spec.digest()}.ckpt"
        assert spec_for("baseline").checkpoint_path() is None


class TestCrashResume:
    def test_killed_worker_resumes_from_its_checkpoint(self, tmp_path):
        """The full fault path: worker dies mid-run (exit 13, no report),
        the runner retries, the retry resumes from the checkpoint — and
        the final digest is byte-identical to an uninterrupted run."""
        journal = tmp_path / "journal.jsonl"
        spec = spec_for("crow-cache", checkpoint_dir=tmp_path / "ck")
        with ParallelCampaign(
            tmp_path / "cache", jobs=2, retries=1, journal=journal,
        ) as campaign:
            (outcome,) = campaign.run([spec], _fn=_crash_after_checkpoint)
        assert outcome.ok
        assert outcome.attempts == 2
        want = EXPECTED["libq-crow-cache"]
        assert outcome.result.telemetry_digest() == want["digest"]

        log = read_journal(journal)
        (retry,) = events(log, "task_retry")
        assert retry["crashed"] is True
        (resumed,) = events(log, "task_resumed")
        assert resumed["checkpoint_cycle"] == 250
        assert resumed["attempt"] == 2
        # a completed run deletes its checkpoint
        assert not spec.checkpoint_path().is_file()

    def test_corrupt_checkpoint_falls_back_to_full_rerun(self, tmp_path):
        spec = spec_for("baseline", checkpoint_dir=tmp_path)
        spec.checkpoint_path().write_bytes(b"garbage" * 100)
        result = spec.run()
        want = EXPECTED["libq-baseline"]
        assert result.telemetry_digest() == want["digest"]
        assert not spec.checkpoint_path().is_file()

    def test_serial_runner_journals_resume_too(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        spec = spec_for("salp", checkpoint_dir=tmp_path / "ck")
        run_workload(
            "libq", spec.config, **RUN,
            snapshot_at_cycle=300,
            snapshot_path=spec.checkpoint_path(),
        )
        with ParallelCampaign(
            tmp_path / "cache", jobs=1, journal=journal,
        ) as campaign:
            (outcome,) = campaign.run([spec])
        assert outcome.ok
        want = EXPECTED["libq-salp"]
        assert outcome.result.telemetry_digest() == want["digest"]
        (resumed,) = events(read_journal(journal), "task_resumed")
        assert resumed["checkpoint_cycle"] == 300


class TestWarmFork:
    MECHANISMS = ("baseline", "crow-cache", "crow-ref", "chargecache")

    def test_forked_sweep_matches_oracle_digests(self, tmp_path):
        """One shared pre-warm, four mechanism forks — every digest must
        equal the committed straight-run oracle, and the journal must
        record exactly one warm_fork covering all four."""
        journal = tmp_path / "journal.jsonl"
        specs = [spec_for(m) for m in self.MECHANISMS]
        with ParallelCampaign(
            tmp_path / "cache", jobs=1, journal=journal,
        ) as campaign:
            outcomes = campaign.run_forked(specs, tmp_path / "warm")
        for mechanism, outcome in zip(self.MECHANISMS, outcomes):
            assert outcome.ok, mechanism
            want = EXPECTED[f"libq-{mechanism}"]
            assert (
                outcome.result.telemetry_digest() == want["digest"]
            ), mechanism
        (fork,) = events(read_journal(journal), "warm_fork")
        assert fork["forks"] == len(self.MECHANISMS)
        assert fork["warm_s"] > 0
        assert Path(fork["image"]).is_file()

    def test_singleton_group_runs_cold(self, tmp_path):
        """A group of one spec with no pre-built image amortizes nothing
        — it must skip image building and still produce the oracle
        digest."""
        journal = tmp_path / "journal.jsonl"
        with ParallelCampaign(
            tmp_path / "cache", jobs=1, journal=journal,
        ) as campaign:
            (outcome,) = campaign.run_forked(
                [spec_for("baseline")], tmp_path / "warm"
            )
        assert outcome.ok
        want = EXPECTED["libq-baseline"]
        assert outcome.result.telemetry_digest() == want["digest"]
        assert events(read_journal(journal), "warm_fork") == []
        assert not (tmp_path / "warm").exists()

    def test_failed_forked_sweep_raises_via_results(self, tmp_path):
        def boom(spec):
            raise ReproError("injected")

        with ParallelCampaign(
            tmp_path / "cache", jobs=1, retries=0,
        ) as campaign:
            with pytest.raises(ReproError):
                campaign.results(
                    [spec_for("baseline")], _fn=boom
                )
