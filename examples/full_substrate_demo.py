#!/usr/bin/env python3
"""The full CROW substrate: caching + refresh relief + RowHammer defense.

The paper's headline flexibility claim is that one substrate (copy rows +
CROW-table) hosts several mechanisms *at the same time*. This demo builds
the ``crow-full`` mechanism and shows all three working on one channel:

1. boot-time retention profiling pins copy rows for weak-row remaps
   (refresh window 64 ms -> 128 ms),
2. a victim application's row reuse hits the CROW-cache (``ACT-t``),
3. an aggressor hammering one row triggers the detector, which copies the
   adjacent victim rows to copy rows through the urgent command path —
   while the cache keeps working around them.
"""

from repro.controller import ChannelController, MemRequest, RequestType
from repro.core import CrowFullSubstrate, EntryOwner
from repro.dram import (
    AddressMapper,
    DramChannel,
    DramGeometry,
    RetentionModel,
    TimingParameters,
)
from repro.dram.address import DramAddress
from repro.dram.commands import CommandKind, RowKind

GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()
MAPPER = AddressMapper(GEO)

AGGRESSOR = 200
HOT_ROWS = (300, 301, 302)


def request(controller, row, now):
    addr = MAPPER.encode(
        DramAddress(channel=0, rank=0, bank=0, row=row, col=0)
    )
    controller.enqueue(
        MemRequest(RequestType.READ, addr, MAPPER.decode(addr)), now
    )
    while controller.pending_requests:
        now = max(controller.tick(now), now + 1)
    for _ in range(400):
        if not controller.channel.banks[0].is_open:
            break
        now = max(controller.tick(now), now + 1)
    return now


def main() -> None:
    retention = RetentionModel(
        GEO, target_interval_ms=128.0, weak_rows_per_subarray=1, seed=5
    )
    substrate = CrowFullSubstrate(
        GEO, TIMING, retention, hammer_threshold=12
    )
    channel = DramChannel(GEO, TIMING)
    controller = ChannelController(
        channel, mechanism=substrate, refresh_enabled=False
    )

    print("== 1. CROW-ref (boot) ==")
    print(f"weak rows remapped to strong copy rows: "
          f"{substrate.ref.remapped_rows}")
    print(f"refresh window: 64 ms -> "
          f"{substrate.achieved_refresh_window_ms:.0f} ms")
    print()

    now = 0
    print("== 2. CROW-cache (victim application) ==")
    for _ in range(3):
        for row in HOT_ROWS:
            now = request(controller, row, now)
    print(f"CROW-table hit rate over the hot set: "
          f"{substrate.cache.hit_rate():.2f}")
    print(f"ACT-t commands issued: {channel.counts[CommandKind.ACT_T]}")
    print()

    print("== 3. RowHammer mitigation (attack) ==")
    for _ in range(14):
        now = request(controller, AGGRESSOR, now)
    print(f"aggressor row {AGGRESSOR} activations: "
          f"{substrate.hammer.counters.get((0, AGGRESSOR), 0)}")
    print(f"victims remapped to copy rows: "
          f"{substrate.hammer.protected_victims}")
    for victim in (AGGRESSOR - 1, AGGRESSOR + 1):
        srow = substrate.service_row(0, victim)
        where = "copy row" if srow.kind is RowKind.COPY else "regular row"
        print(f"  row {victim} now served from: {where}")
    print()

    print("== copy-row pool bookkeeping (one CROW-table) ==")
    for owner in (EntryOwner.REF, EntryOwner.HAMMER, EntryOwner.CACHE):
        print(f"  {owner.name:<7}: "
              f"{substrate.table.allocated_count(owner)} copy rows")
    print()
    print("all three mechanisms share one substrate — the paper's claim.")


if __name__ == "__main__":
    main()
