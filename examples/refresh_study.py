#!/usr/bin/env python3
"""CROW-ref across DRAM densities (the Figure 13 scenario, abbreviated).

As chips get denser, each REF command blocks the rank for longer (tRFC
grows), so the refresh tax on both performance and energy rises. CROW-ref
remaps the few retention-weak rows to strong copy rows so the whole chip
can refresh half as often (64 ms -> 128 ms).

Usage::

    python examples/refresh_study.py [workload]
"""

import sys

from repro import SystemConfig, run_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    instructions, warmup = 50_000, 15_000
    print(f"workload: {name} — CROW-ref vs baseline across chip densities")
    print()
    print(f"{'density':>8} {'refreshes':>10} {'base IPC':>9} "
          f"{'ref IPC':>8} {'speedup':>8} {'energy':>8} {'remapped rows':>14}")
    for density in (8, 16, 32, 64):
        base = run_workload(
            name, SystemConfig(mechanism="baseline", density_gbit=density),
            instructions=instructions, warmup_instructions=warmup,
        )
        ref = run_workload(
            name, SystemConfig(mechanism="crow-ref", density_gbit=density),
            instructions=instructions, warmup_instructions=warmup,
        )
        print(
            f"{density:>6}Gb {base.controller_stats['refreshes']:>10} "
            f"{base.ipc:>9.3f} {ref.ipc:>8.3f} "
            f"{ref.speedup_over(base):>7.3f}x "
            f"{ref.energy_ratio(base):>7.3f}x "
            f"{ref.mechanism_stats.get('ref_remapped_rows', 0):>14.0f}"
        )
    print()
    print("The refresh interval doubles (64 ms -> 128 ms), halving the")
    print("number of REF commands; the benefit grows with density because")
    print("each REF blocks the rank for longer in denser chips.")


if __name__ == "__main__":
    main()
