#!/usr/bin/env python3
"""Explore the circuit-level behaviour of multiple-row activation.

Reproduces, from the analytical SPICE-substitute model, the quantities
behind the paper's Figures 5-7 and Table 1: how tRCD/tRAS/tWR change with
the number of simultaneously-activated rows, the tRCD-vs-tRAS trade-off of
early restoration termination, and the power/area costs.
"""

from repro.circuit import (
    DecoderAreaModel,
    MonteCarloAnalyzer,
    MraModel,
    activation_power_overhead,
    derive_crow_timing_factors,
)


def main() -> None:
    model = MraModel()
    base = model.baseline()
    print("== Latency vs. simultaneously-activated rows (Figure 5) ==")
    print(f"{'rows':>5} {'tRCD':>7} {'tRAS':>7} {'restore':>8} {'tWR':>7} "
          f"{'power':>7}")
    for n in range(1, 10):
        print(f"{n:>5} {model.trcd_factor(n):>6.2f}x "
              f"{model.tras_factor(n):>6.2f}x "
              f"{model.restoration_factor(n):>7.2f}x "
              f"{model.twr_factor(n):>6.2f}x "
              f"{activation_power_overhead(n):>6.3f}x")
    print()

    print("== tRCD / tRAS trade-off for two rows (Figure 6) ==")
    print(f"{'restore to':>11} {'tRAS':>7} {'next tRCD':>10} "
          f"{'retention':>10}")
    for point in model.tradeoff_frontier(2, n_points=8):
        print(f"{point.restore_fraction:>10.1%} "
              f"{point.tras_factor:>6.2f}x "
              f"{point.next_trcd_factor:>9.2f}x "
              f"{point.retention_ms:>8.1f}ms")
    print()

    print("== Derived Table 1 factors (vs. published values) ==")
    derived = derive_crow_timing_factors()
    published = [
        ("ACT-t tRCD (full pair)", derived.act_t_full_trcd, 0.62),
        ("ACT-t tRAS (full restore)", derived.act_t_tras_full, 0.93),
        ("ACT-t tRAS (early term.)", derived.act_t_tras_early, 0.67),
        ("ACT-c tRCD", derived.act_c_trcd, 1.00),
        ("ACT-c tRAS (full restore)", derived.act_c_tras_full, 1.18),
        ("MRA tWR (full restore)", derived.twr_full, 1.14),
        ("MRA tWR (early term.)", derived.twr_early, 0.87),
    ]
    print(f"{'quantity':<28} {'derived':>8} {'paper':>7}")
    for name, value, paper in published:
        print(f"{name:<28} {value:>7.2f}x {paper:>6.2f}x")
    print()

    print("== Monte-Carlo process variation (5% margins) ==")
    analyzer = MonteCarloAnalyzer(iterations=2000, seed=7)
    for name, result in analyzer.analyze(n_rows=2).items():
        print(f"two-row {name:<5}: mean {result.mean_ns:6.2f} ns, "
              f"worst {result.worst_ns:6.2f} ns "
              f"(spread {100 * (result.spread - 1):.1f}%)")
    print()

    print("== Copy-row decoder area (Figure 7 right) ==")
    area = DecoderAreaModel()
    print(f"{'copy rows':>10} {'decoder area':>13} {'decoder ovh':>12} "
          f"{'chip ovh':>9} {'capacity':>9}")
    for copy_rows in (1, 2, 4, 8, 16, 32):
        print(f"{copy_rows:>10} "
              f"{area.decoder_area_um2(copy_rows):>10.1f}um2 "
              f"{area.copy_decoder_overhead(copy_rows):>11.1%} "
              f"{area.crow_chip_overhead(copy_rows):>8.2%} "
              f"{area.crow_capacity_overhead(copy_rows):>8.1%}")


if __name__ == "__main__":
    main()
