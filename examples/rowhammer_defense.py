#!/usr/bin/env python3
"""RowHammer attack and the CROW-based mitigation (paper Section 4.3).

Simulates an aggressor that rapidly activates one DRAM row. The
functional cell array injects disturbance bit flips into physically
adjacent rows once the aggressor crosses the hammer threshold — the real
RowHammer failure mode. With the CROW mitigation enabled, the memory
controller detects the attack and copies the victim rows to copy rows of
the same subarray, so the data the system *serves* stays intact even
though the physical victim cells flip.
"""

import numpy as np

from repro.controller import ChannelController, MemRequest, RequestType
from repro.core import RowHammerMitigation
from repro.dram import (
    AddressMapper,
    CellArray,
    DramChannel,
    DramGeometry,
    TimingParameters,
)
from repro.dram.address import DramAddress
from repro.dram.commands import RowId, RowKind

GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()
MAPPER = AddressMapper(GEO)

AGGRESSOR = 100
VICTIMS = (99, 101)
PATTERN = 0x5A5A5A5A5A5A5A5A
HAMMER_COUNT = 120
FLIP_THRESHOLD = 40      # functional-model disturbance threshold
DETECT_THRESHOLD = 25    # mitigation detector threshold


def hammer(mitigated: bool) -> tuple[CellArray, RowHammerMitigation | None]:
    cells = CellArray(
        GEO, clock_mhz=TIMING.clock_mhz, hammer_threshold=FLIP_THRESHOLD
    )
    channel = DramChannel(GEO, TIMING, cell_array=cells)
    mechanism = (
        RowHammerMitigation(GEO, TIMING, hammer_threshold=DETECT_THRESHOLD)
        if mitigated
        else None
    )
    controller = ChannelController(
        channel, mechanism=mechanism, refresh_enabled=False
    )
    for victim in VICTIMS:
        cells.set_row_data(0, RowId.regular(victim, GEO.rows_per_subarray),
                           PATTERN)
    address = MAPPER.encode(
        DramAddress(channel=0, rank=0, bank=0, row=AGGRESSOR, col=0)
    )
    now = 0
    for _ in range(HAMMER_COUNT):
        request = MemRequest(RequestType.READ, address, MAPPER.decode(address))
        controller.enqueue(request, now)
        while controller.pending_requests:
            now = max(controller.tick(now), now + 1)
        # Idle a little so the row closes and the next access re-activates.
        for _ in range(300):
            if not channel.banks[0].is_open:
                break
            now = max(controller.tick(now), now + 1)
    return cells, controller.mechanism if mitigated else None


def served_data(cells: CellArray, mechanism, victim: int) -> np.ndarray:
    """The row the system would serve for ``victim`` after (any) remap."""
    if mechanism is not None:
        row = mechanism.service_row(0, victim)
    else:
        row = RowId.regular(victim, GEO.rows_per_subarray)
    return cells.row_data(0, row)


def main() -> None:
    print(f"hammering row {AGGRESSOR} with {HAMMER_COUNT} activations")
    print(f"(cells flip after {FLIP_THRESHOLD} activations in a refresh "
          f"window; detector threshold is {DETECT_THRESHOLD})")
    print()
    for mitigated in (False, True):
        label = "WITH CROW mitigation" if mitigated else "UNPROTECTED"
        cells, mechanism = hammer(mitigated)
        print(f"-- {label} --")
        print(f"physical disturbance flips injected: "
              f"{cells.disturbance_flips}")
        for victim in VICTIMS:
            data = served_data(cells, mechanism, victim)
            intact = bool(np.all(data == np.uint64(PATTERN)))
            flipped = int(np.count_nonzero(data != np.uint64(PATTERN)))
            where = "copy row" if (
                mechanism is not None
                and mechanism.service_row(0, victim).kind is RowKind.COPY
            ) else "regular row"
            print(f"  victim {victim}: served from {where:<11} "
                  f"data intact: {intact}"
                  + ("" if intact else f"  ({flipped} corrupted words)"))
        if mechanism is not None:
            print(f"  victims remapped: {mechanism.protected_victims}")
        print()


if __name__ == "__main__":
    main()
