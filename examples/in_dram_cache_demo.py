#!/usr/bin/env python3
"""Functional walk-through of the CROW substrate's two primitives.

Drives a DRAM channel with the functional cell array attached and shows,
at the level of individual commands:

1. ``ACT-c`` (activate-and-copy) — RowClone-style in-DRAM duplication of a
   regular row into a copy row,
2. ``ACT-t`` (activate-two) — reduced-latency simultaneous activation of
   the duplicate pair,
3. the *partial restoration* hazard — why the memory controller must
   fully restore a pair before evicting it from the CROW-table
   (paper Section 4.1.4), demonstrated by deliberately breaking the rule.
"""

import numpy as np

from repro.dram import (
    CellArray,
    CrowTimings,
    DramChannel,
    DramGeometry,
    TimingParameters,
)
from repro.dram.commands import ActTimings, Command, CommandKind, RowId
from repro.errors import DataIntegrityError

GEO = DramGeometry()
TIMING = TimingParameters.lpddr4()
CROW = CrowTimings.from_factors(TIMING)


def act_c(row: int, copy_index: int) -> Command:
    regular = RowId.regular(row, GEO.rows_per_subarray)
    return Command(
        CommandKind.ACT_C,
        bank=0,
        rows=(regular, RowId.copy(regular.subarray, copy_index)),
        timings=ActTimings(
            trcd=CROW.trcd_act_c,
            tras_full=CROW.tras_act_c_full,
            tras_early=CROW.tras_act_c_early,
            twr=CROW.twr_mra_early,
            twr_full=CROW.twr_mra_full,
        ),
    )


def act_t(row: int, copy_index: int) -> Command:
    regular = RowId.regular(row, GEO.rows_per_subarray)
    return Command(
        CommandKind.ACT_T,
        bank=0,
        rows=(regular, RowId.copy(regular.subarray, copy_index)),
        timings=ActTimings(
            trcd=CROW.trcd_act_t_full,
            tras_full=CROW.tras_act_t_full,
            tras_early=CROW.tras_act_t_early,
            twr=CROW.twr_mra_early,
            twr_full=CROW.twr_mra_full,
        ),
    )


def main() -> None:
    cells = CellArray(GEO, clock_mhz=TIMING.clock_mhz)
    channel = DramChannel(GEO, TIMING, cell_array=cells)
    source = RowId.regular(100, GEO.rows_per_subarray)
    copy = RowId.copy(source.subarray, 0)

    print("== 1. In-DRAM row copy with ACT-c ==")
    cells.set_row_data(0, source, 0xC0FFEE)
    print(f"regular row 100 holds 0x{int(cells.row_data(0, source)[0]):X}")
    now = channel.earliest_issue(act_c(100, 0))
    channel.issue(act_c(100, 0), now)
    pre = Command(CommandKind.PRE, bank=0)
    now = channel.earliest_issue(pre, honor_full_tras=True)
    # Wait until the pair is fully restored before closing.
    now = max(now, CROW.tras_act_c_full)
    channel.issue(pre, now)
    same = np.array_equal(cells.row_data(0, copy), cells.row_data(0, source))
    print(f"after ACT-c + full restore: copy row == regular row? {same}")
    print(f"copy row is live: {cells.is_live(0, copy)}")
    print()

    print("== 2. Reduced-latency activation with ACT-t ==")
    print(f"conventional ACT tRCD : {TIMING.trcd} cycles")
    print(f"ACT-t tRCD (pair)     : {CROW.trcd_act_t_full} cycles "
          f"({100 * (1 - CROW.trcd_act_t_full / TIMING.trcd):.0f}% lower)")
    t_act = channel.earliest_issue(act_t(100, 0))
    channel.issue(act_t(100, 0), t_act)
    rd = Command(CommandKind.RD, bank=0, col=0)
    t_rd = channel.earliest_issue(rd)
    print(f"read issued {t_rd - t_act} cycles after ACT-t "
          f"(= the reduced tRCD)")
    channel.issue(rd, t_rd)
    # Close early: restoration is terminated before the full tRAS.
    t_pre = channel.earliest_issue(pre)
    channel.issue(pre, t_pre)
    print(f"pair precharged after {t_pre - t_act} cycles "
          f"(< full tRAS of {CROW.tras_act_t_full}): partially restored")
    print(f"charge fraction now: {cells.charge_fraction(0, source):.2f} "
          f"(full = {cells.tech.full_restore_fraction})")
    print()

    print("== 3. The partial-restoration hazard ==")
    print("activating the partially-restored regular row ALONE would")
    print("corrupt it; the CROW-cache eviction protocol prevents this by")
    print("fully restoring the pair first. Breaking the rule on purpose:")
    single = Command(CommandKind.ACT, bank=0, rows=(source,))
    try:
        channel.issue(single, channel.earliest_issue(single))
    except DataIntegrityError as error:
        print(f"  DataIntegrityError: {error}")
    print()
    print("restoring the pair properly (ACT-t honoring the full tRAS)...")
    t = channel.earliest_issue(act_t(100, 0))
    channel.issue(act_t(100, 0), t)
    t_pre = max(channel.earliest_issue(pre), t + CROW.tras_act_t_full)
    channel.issue(pre, t_pre)
    print(f"pair fully restored: requires_pair = "
          f"{cells.requires_pair(0, source)}")
    single_t = channel.earliest_issue(single)
    channel.issue(single, single_t)
    print("single-row activation now succeeds — safe to evict the entry.")


if __name__ == "__main__":
    main()
