#!/usr/bin/env python3
"""Quickstart: compare conventional DRAM against the CROW mechanisms.

Runs one memory-intensive workload on the paper's Table 2 system under
four configurations — baseline, CROW-cache, CROW-ref and the combined
mechanism — and prints speedup, DRAM energy, and CROW-table hit rate.

Usage::

    python examples/quickstart.py [workload] [instructions]
"""

import sys

from repro import SystemConfig, run_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "h264-dec"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    warmup = instructions // 2

    print(f"workload: {name}  ({instructions} measured instructions)")
    print()

    baseline = run_workload(
        name, SystemConfig(mechanism="baseline"),
        instructions=instructions, warmup_instructions=warmup,
    )
    print(
        f"{'config':<14} {'IPC':>6} {'speedup':>8} {'energy':>8} "
        f"{'hit rate':>9} {'refresh window':>15}"
    )
    print(
        f"{'baseline':<14} {baseline.ipc:>6.3f} {'1.000x':>8} {'1.000x':>8} "
        f"{'-':>9} {baseline.refresh_window_ms:>13.0f}ms"
    )
    for mechanism in ("crow-cache", "crow-ref", "crow-combined"):
        result = run_workload(
            name, SystemConfig(mechanism=mechanism),
            instructions=instructions, warmup_instructions=warmup,
        )
        hit = f"{result.crow_hit_rate:.2f}" if result.crow_hit_rate else "-"
        print(
            f"{mechanism:<14} {result.ipc:>6.3f} "
            f"{result.speedup_over(baseline):>7.3f}x "
            f"{result.energy_ratio(baseline):>7.3f}x "
            f"{hit:>9} {result.refresh_window_ms:>13.0f}ms"
        )
    print()
    print(f"measured MPKI: {baseline.core_mpki[0]:.1f}")
    print("(energy < 1.0x means CROW reduced DRAM energy)")


if __name__ == "__main__":
    main()
